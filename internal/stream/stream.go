// Package stream is the serving layer of the DAP reproduction: a
// streaming aggregation engine that turns the paper's one-shot batch
// collector into a long-lived, multi-tenant service.
//
// Three layers compose:
//
//   - Sharded histograms (shard.go). Per (tenant, group) the live epoch is
//     a set of lock-striped count histograms over the mechanism's
//     discretized output domain. Ingesting a report is a bucket-index
//     computation plus a counter increment under one stripe's lock —
//     memory is O(shards·h·d′) regardless of how many reports arrive, and
//     ingest throughput scales with the stripe count instead of
//     serializing on a global mutex. The bucket indices are computed with
//     ldp.Discretizer, which reproduces emf.(*Matrix).Counts exactly, so a
//     histogram accumulated report-by-report equals the batch histogram
//     bucket-for-bucket and the downstream estimate is identical (the
//     histogram-equivalence invariant, enforced by tests).
//
//   - Epoch windows (tenant.go). Rotate seals the live shards into an
//     immutable epoch snapshot, re-estimates the configured window (the
//     sealed epoch for tumbling windows, the last Span sealed epochs for
//     sliding ones) and caches the result, so reading an estimate is a
//     pointer load — always fresh without rescanning reports. Live
//     estimates that fold in the unsealed epoch are available on demand.
//
//   - A tenant registry (registry.go). One process hosts many concurrent
//     aggregations — mean estimation over PM, frequency estimation over
//     k-RR, distribution estimation over SW — each with its own protocol
//     parameters, privacy accountant, histograms and epoch clock.
package stream

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// Kind selects which DAP instantiation a tenant runs.
type Kind int

// Tenant kinds.
const (
	// KindMean is mean estimation over the Piecewise Mechanism (§V).
	KindMean Kind = iota
	// KindFreq is categorical frequency estimation over k-RR (§V-D).
	KindFreq
	// KindDist is distribution (and mean) estimation over Square Wave (§V-D).
	KindDist
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindMean:
		return "mean"
	case KindFreq:
		return "freq"
	case KindDist:
		return "dist"
	}
	return "unknown"
}

// ParseKind parses a tenant kind name.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "", "mean", "pm":
		return KindMean, nil
	case "freq", "frequency", "krr":
		return KindFreq, nil
	case "dist", "distribution", "sw":
		return KindDist, nil
	}
	return 0, fmt.Errorf("stream: unknown tenant kind %q", s)
}

// WindowMode selects the epoch window shape.
type WindowMode int

// Window modes.
const (
	// Tumbling estimates each sealed epoch on its own: Rotate seals the
	// live histograms and the cached estimate covers exactly that epoch.
	Tumbling WindowMode = iota
	// Sliding estimates the union of the last Span sealed epochs: each
	// rotation slides the window forward by one epoch.
	Sliding
)

// String implements fmt.Stringer.
func (m WindowMode) String() string {
	if m == Sliding {
		return "sliding"
	}
	return "tumbling"
}

// ParseWindowMode parses a window mode name.
func ParseWindowMode(s string) (WindowMode, error) {
	switch strings.ToLower(s) {
	case "", "tumbling", "fixed":
		return Tumbling, nil
	case "sliding":
		return Sliding, nil
	}
	return 0, fmt.Errorf("stream: unknown window mode %q", s)
}

// WindowConfig shapes a tenant's epoch windows.
type WindowConfig struct {
	// Mode selects tumbling (per-epoch) or sliding (last-Span-epochs)
	// estimation windows.
	Mode WindowMode
	// Span is the number of sealed epochs a sliding window covers
	// (default 1; tumbling windows always cover exactly one).
	Span int
	// Epoch is the wall-clock epoch length driving automatic rotation;
	// zero disables the clock and epochs rotate only on explicit Rotate
	// calls (the batch-compatible default: the live window then simply
	// accumulates everything ever ingested).
	Epoch time.Duration
}

// Config parameterizes one tenant.
type Config struct {
	// Kind selects the protocol instantiation.
	Kind Kind
	// Eps and Eps0 are the total and minimal group budgets.
	Eps, Eps0 float64
	// Scheme selects EMF, EMF* or CEMF* estimation.
	Scheme core.Scheme
	// K is the category count (KindFreq only).
	K int
	// Buckets fixes one output histogram resolution d′ for every group
	// (numeric kinds), rounded down to even and floored at 8 like
	// emf.BucketCounts. Zero derives per-group resolutions from
	// ExpectedUsers instead — the streaming default.
	Buckets int
	// ExpectedUsers is the anticipated user population per window. With
	// Buckets zero, group t's resolution follows the paper's rule on the
	// report volume that population yields — users split equally, group t
	// reporting 2^t times — exactly as the batch collector would pick for
	// the same collection (default 4096 users).
	ExpectedUsers int
	// Shards is the number of lock stripes per group histogram
	// (default 8).
	Shards int
	// Window shapes the epoch windows.
	Window WindowConfig
	// OPrime, AutoOPrime and GammaSup configure the pessimistic mean
	// initialization (KindMean).
	OPrime     float64
	AutoOPrime bool
	GammaSup   float64
	// SuppressFactor is CEMF*'s concentration threshold factor.
	SuppressFactor float64
	// EMFMaxIter caps EM iterations per fit.
	EMFMaxIter int
	// WeightMode selects the inter-group aggregation weights.
	WeightMode core.WeightMode
	// TrimFrac is the SW pessimistic-O′ trim fraction (KindDist).
	TrimFrac float64
}

// normalize validates cfg and fills defaults, returning the effective
// configuration.
func (cfg Config) normalize() (Config, error) {
	if cfg.Kind < KindMean || cfg.Kind > KindDist {
		return cfg, fmt.Errorf("stream: invalid tenant kind %d", int(cfg.Kind))
	}
	if cfg.Kind == KindFreq && cfg.K < 2 {
		return cfg, errors.New("stream: freq tenant needs K >= 2")
	}
	if cfg.ExpectedUsers == 0 {
		cfg.ExpectedUsers = 4096
	}
	if cfg.ExpectedUsers < 0 {
		return cfg, errors.New("stream: ExpectedUsers must be positive")
	}
	if cfg.Buckets < 0 {
		return cfg, errors.New("stream: Buckets must be non-negative")
	}
	if cfg.Buckets > 0 {
		if cfg.Buckets%2 == 1 {
			cfg.Buckets--
		}
		if cfg.Buckets < 8 {
			cfg.Buckets = 8
		}
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards < 1 {
		return cfg, errors.New("stream: Shards must be positive")
	}
	if cfg.Window.Span == 0 {
		cfg.Window.Span = 1
	}
	if cfg.Window.Span < 1 {
		return cfg, errors.New("stream: window span must be positive")
	}
	if cfg.Window.Mode == Tumbling {
		cfg.Window.Span = 1
	}
	if cfg.Window.Epoch < 0 {
		return cfg, errors.New("stream: epoch duration must be non-negative")
	}
	return cfg, nil
}
