package stream

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/emf"
	"repro/internal/ldp"
	"repro/internal/privacy"
	"repro/internal/store"
	"repro/internal/wirebin"
)

// ErrWrongGroup is returned by Ingest when a user reports for a different
// group than the one they are bound to.
var ErrWrongGroup = errors.New("stream: user belongs to another group")

// ErrStoreDown is returned when a state change cannot be made durable:
// the request was rejected (and any budget charge rolled back) because
// the WAL append failed. Clients should retry after the store heals.
var ErrStoreDown = errors.New("stream: durable store unavailable")

// ErrRotating is returned by TryRotate when a rotation is already in
// flight; the caller should retry shortly.
var ErrRotating = errors.New("stream: rotation in progress")

// hashUser maps a user id to a histogram/binding stripe with FNV-1a. The
// hash must be stable across process restarts — WAL replay re-runs every
// accepted report through the ingest path, and bit-identical recovered
// sums need two ingredients: a deterministic user→stripe assignment
// (this hash) and same-stripe ingests serializing their WAL append with
// their apply (the stripe lock held across both in Ingest/IngestBatch),
// so per-stripe float accumulation order equals LSN order.
//
//dapvet:hotpath
func hashUser(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Snapshot is one materialized estimate of a tenant's window.
type Snapshot struct {
	// Tenant is the owning tenant's name.
	Tenant string
	// Task is the tenant's task kind.
	Task core.TaskKind
	// Epoch is the number of epochs sealed when the snapshot was taken.
	Epoch uint64
	// Live reports whether the unsealed live epoch was folded in.
	Live bool
	// At is the estimation wall-clock time.
	At time.Time
	// Reports is the total report count across the window's groups.
	Reports float64
	// Result is the unified estimate (mean, histogram, frequencies, γ̂ and
	// per-group diagnostics — whichever the task produces).
	Result *core.Result
}

// epochHist is one sealed epoch: per-group histograms, exact sums and
// report counts. Sealed epochs are immutable and shared by reference.
type epochHist struct {
	counts [][]float64
	sums   []float64
	ns     []float64
}

// Tenant is one hosted aggregation: a task-spec estimator, a privacy
// accountant, per-group sharded live histograms, a ring of sealed epochs
// and the cached window estimate.
type Tenant struct {
	name   string
	cfg    Config
	est    core.Streamable
	groups []core.Group
	acct   *privacy.Accountant
	disc   []ldp.Discretizer // per group; unused for frequency tasks
	bkt    []int             // per-group histogram resolution d′

	// st is the durability layer, nil for an ephemeral tenant. When set,
	// every accepted ingest, join and rotation is WAL-appended before it
	// takes effect, and walStart (guarded by mu) tracks the live epoch's
	// replay position: the LSN right after the last rotation record.
	st       *store.Store
	walStart uint64
	// acctFrom is the replay position of the accountant/join state; it is
	// only consulted during single-threaded recovery.
	acctFrom uint64

	joinMu sync.Mutex
	joined int

	userGrp userGroups // user id → group index (set at join or first report)

	// mu orders ingestion against rotation: ingesters hold it shared while
	// touching a live stripe, Rotate holds it exclusively while swapping
	// the live shard sets and sealing the epoch.
	mu     sync.RWMutex
	live   []*shardSet
	sealed []epochHist // newest last; len ≤ cfg.Window.Span
	seq    uint64
	// onSeal, when set (guarded by mu), receives each live seal's
	// EpochDelta — the merge-plane export. Fired by rotate after the
	// seal, outside all locks; never fired by recovery replays.
	onSeal func(*EpochDelta)

	// rotateMu serializes rotations end to end (WAL append + seal +
	// estimate), so TryRotate can report an in-flight rotation.
	rotateMu sync.Mutex

	cached atomic.Pointer[Snapshot]
	// warm is the EM-fit state of the latest estimate, seeding the next
	// re-estimation when cfg.Warm is on (epoch-to-epoch warm start). Any
	// recent estimate is a valid seed, so the pointer is simply last-write
	// -wins.
	warm atomic.Pointer[core.WarmState]

	clockMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}

	// met holds the tenant's pre-bound metric handles; lastRotate is the
	// wall clock of the last live seal (unix nanos, 0 = never), read by
	// the epoch-lag gauge at scrape time.
	met        tenantMetrics
	lastRotate atomic.Int64
}

// NewTenant builds a tenant from cfg (defaults filled, see Config). The
// task spec goes through core.Build — the same construction path as batch
// estimation — so any spec that estimates in batch estimates here, and
// any spec Build rejects is rejected here with the same ErrBadSpec.
func NewTenant(name string, cfg Config) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("stream: tenant name must be non-empty")
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	est, err := core.Build(cfg.Spec)
	if err != nil {
		return nil, err
	}
	streamable, ok := est.(core.Streamable)
	if !ok {
		return nil, fmt.Errorf("%w: task %q cannot run as a stream tenant",
			core.ErrBadSpec, cfg.Spec.Task)
	}
	t := &Tenant{name: name, cfg: cfg, est: streamable}
	t.met = bindTenantMetrics(name)
	t.groups = streamable.Groups()
	h := len(t.groups)
	// Per-group histogram resolution: the paper's d′ rule applied to the
	// report volume ExpectedUsers would yield — users split into h equal
	// chunks with the batch collector's exact rounding, group t reporting
	// 2^t times — so a window collected at the expected scale estimates at
	// the same resolution the batch path would have picked.
	t.bkt = make([]int, h)
	for i := range t.groups {
		switch {
		case cfg.Spec.Task == core.TaskFrequency:
			t.bkt[i] = cfg.Spec.K
		case cfg.Buckets > 0:
			t.bkt[i] = cfg.Buckets
		default:
			users := (i+1)*cfg.ExpectedUsers/h - i*cfg.ExpectedUsers/h
			t.bkt[i] = emf.OutputBuckets(users * t.groups[i].Reports)
		}
	}
	if cfg.Spec.Task != core.TaskFrequency {
		t.disc = make([]ldp.Discretizer, h)
		for i := range t.groups {
			t.disc[i] = ldp.NewDiscretizer(t.est.OutputDomain(i), t.bkt[i])
		}
	}
	t.acct, err = privacy.NewAccountant(cfg.Spec.Eps)
	if err != nil {
		return nil, err
	}
	t.live = t.freshLive()
	return t, nil
}

// NewTenantSpec builds a tenant directly from a task spec, honouring its
// Serve section — the one-call spec→tenant path.
func NewTenantSpec(name string, sp core.Spec) (*Tenant, error) {
	cfg, err := ConfigFromSpec(sp)
	if err != nil {
		return nil, err
	}
	return NewTenant(name, cfg)
}

// freshLive allocates one empty shard set per group.
func (t *Tenant) freshLive() []*shardSet {
	live := make([]*shardSet, len(t.groups))
	for i := range live {
		live[i] = newShardSet(t.cfg.Shards, t.bkt[i])
	}
	return live
}

// Buckets returns the per-group histogram resolutions d′.
func (t *Tenant) Buckets() []int { return append([]int(nil), t.bkt...) }

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Kind returns the tenant's task kind.
func (t *Tenant) Kind() core.TaskKind { return t.cfg.Spec.Task }

// Config returns the effective (normalized) configuration.
func (t *Tenant) Config() Config { return t.cfg }

// Spec returns the tenant's task spec with a Serve section reflecting the
// effective engine configuration — enough to recreate the tenant.
func (t *Tenant) Spec() core.Spec { return t.cfg.SpecWithServe() }

// Estimator exposes the tenant's task estimator.
func (t *Tenant) Estimator() core.Estimator { return t.est }

// Groups returns the group layout.
func (t *Tenant) Groups() []core.Group { return append([]core.Group(nil), t.groups...) }

// Accountant exposes the tenant's privacy accountant.
func (t *Tenant) Accountant() *privacy.Accountant { return t.acct }

// Join assigns the next user to a group round-robin and records the
// binding, mirroring the batch collector's equal-sized grouping. With a
// store attached the assignment is WAL-logged (best effort: a join handed
// out while the store is down is simply not durable — the binding is
// re-established idempotently when the user first reports).
func (t *Tenant) Join() (string, core.Group) {
	t.joinMu.Lock()
	id := fmt.Sprintf("u%06d", t.joined)
	grp := t.joined % len(t.groups)
	if t.st != nil {
		_, _ = t.st.AppendJoin(t.name, id, grp)
	}
	t.joined++
	t.userGrp.store(hashUser(id), id, grp)
	t.joinMu.Unlock()
	return id, t.groups[grp]
}

// restoreJoin re-applies a logged join during recovery: the recorded
// binding, not a recomputed one, so replay reproduces history exactly.
func (t *Tenant) restoreJoin(user string, group int) {
	t.joinMu.Lock()
	t.joined++
	t.userGrp.store(hashUser(user), user, group)
	t.joinMu.Unlock()
}

// Joined returns how many users have joined.
func (t *Tenant) Joined() int {
	t.joinMu.Lock()
	defer t.joinMu.Unlock()
	return t.joined
}

// userGroups is a striped, typed user→group binding map. The bind-check
// on the ingest hot path is one RLock plus one map[string]int lookup —
// unlike sync.Map, whose any-typed keys box the user string (one 16-byte
// allocation) on every call.
type userGroups struct {
	shards [64]userGroupShard
}

type userGroupShard struct {
	mu sync.RWMutex
	m  map[string]int
	_  [32]byte // keep adjacent stripes off one cache line
}

// loadOrStore returns the existing binding for user, or records group as
// its binding. hash selects the stripe (any stable hash of user works;
// Ingest reuses the histogram stripe hash).
func (u *userGroups) loadOrStore(hash uint64, user string, group int) (prev int, loaded bool) {
	s := &u.shards[hash&63]
	s.mu.RLock()
	prev, ok := s.m[user]
	s.mu.RUnlock()
	if ok {
		return prev, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.m[user]; ok {
		return prev, true
	}
	if s.m == nil {
		s.m = make(map[string]int)
	}
	s.m[user] = group
	return group, false
}

// store records a binding unconditionally (user join).
func (u *userGroups) store(hash uint64, user string, group int) {
	s := &u.shards[hash&63]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]int)
	}
	s.m[user] = group
	s.mu.Unlock()
}

// idxPool recycles the per-request bucket-index buffer so the steady-state
// ingest path allocates nothing (pointer-to-slice avoids boxing the slice
// header on Put).
var idxPool = sync.Pool{New: func() any { s := make([]int, 0, 64); return &s }}

// Ingest validates and records a batch of reports from one user. The
// sequence is strict: every value is validated and discretized first, the
// user's budget is charged atomically for the whole batch, and only then
// is group state touched — a rejected request mutates nothing. Unknown
// users are bound to the group they first report for; later reports for a
// different group are rejected.
func (t *Tenant) Ingest(user string, group int, values []float64) error {
	err := t.ingest(user, group, values)
	if err != nil {
		t.met.rejected.Inc()
	} else {
		t.met.ingested.Add(uint64(len(values)))
	}
	return err
}

// ingest is Ingest's body; the exported wrapper only feeds the tenant's
// accept/reject counters (pre-bound handles — no allocation).
func (t *Tenant) ingest(user string, group int, values []float64) error {
	if user == "" {
		return errors.New("stream: user id must be non-empty")
	}
	if group < 0 || group >= len(t.groups) {
		return fmt.Errorf("stream: group %d out of range [0,%d)", group, len(t.groups))
	}
	g := t.groups[group]
	if len(values) == 0 {
		return errors.New("stream: no values")
	}
	if len(values) > g.Reports {
		return fmt.Errorf("stream: group %d accepts at most %d reports per request", group, g.Reports)
	}
	buf := idxPool.Get().(*[]int)
	defer idxPool.Put(buf)
	idx, err := t.indices(group, values, (*buf)[:0])
	*buf = idx[:0]
	if err != nil {
		return err
	}
	stripe := hashUser(user)
	if prev, loaded := t.userGrp.loadOrStore(stripe, user, group); loaded && prev != group {
		return fmt.Errorf("%w: user %s is bound to group %d", ErrWrongGroup, user, prev)
	}
	// Budget accounting: each report in group t costs ε_t; the batch is
	// charged atomically before any histogram is touched. Charge, WAL
	// append and histogram apply all happen under the shared rotation lock
	// so an epoch seal (which logs its own record under the exclusive
	// lock) can never slip between the append and the apply — the WAL's
	// record order is exactly the order state changed in. The target
	// stripe's lock is additionally held across the same window: replay
	// applies records in LSN order, so same-stripe ingests must serialize
	// their append+apply for the live run's per-stripe float accumulation
	// order (and a same-user ledger's charge order) to equal log order —
	// that is what makes recovered sums bit-identical rather than
	// approximately equal. Different stripes still proceed concurrently
	// and coalesce into one group-commit write.
	t.mu.RLock()
	sh := t.live[group].stripe(stripe)
	sh.mu.Lock()
	if err := t.acct.SpendN(user, g.Eps, len(values)); err != nil {
		sh.mu.Unlock()
		t.mu.RUnlock()
		return err
	}
	if t.st != nil {
		if _, err := t.st.AppendIngest(t.name, user, group, values); err != nil {
			// Not durable ⇒ not accepted: roll the charge back so the
			// rejected request leaves no trace, and surface a retryable
			// store-down error.
			t.acct.Refund(user, g.Eps, len(values))
			sh.mu.Unlock()
			t.mu.RUnlock()
			return fmt.Errorf("%w: %v", ErrStoreDown, err)
		}
	}
	sh.addLocked(idx, values)
	sh.mu.Unlock()
	t.mu.RUnlock()
	return nil
}

// BatchEntry is one report in a batched ingest. It aliases the store's
// WAL entry type so an all-accepted batch is logged without copying.
type BatchEntry = store.IngestEntry

// IngestBatch applies many reports with Ingest's exact per-entry
// semantics — validate, bind, charge atomically, then touch group state —
// but one WAL write covers every accepted entry, which is what makes the
// durable ingest path fast. The returned slice holds one error per entry,
// nil for accepted ones; a rejected entry mutates nothing and does not
// block the rest. When the store cannot log the batch, every staged
// entry's charge is rolled back and reported as ErrStoreDown.
func (t *Tenant) IngestBatch(entries []BatchEntry) []error {
	errs := t.ingestBatch(entries)
	var accepted uint64
	for i, err := range errs {
		if err != nil {
			t.met.rejected.Inc()
		} else {
			accepted += uint64(len(entries[i].Values))
		}
	}
	t.met.ingested.Add(accepted)
	return errs
}

// ingestBatch is IngestBatch's body; the exported wrapper feeds the
// accept/reject counters once per batch.
func (t *Tenant) ingestBatch(entries []BatchEntry) []error {
	errs := make([]error, len(entries))
	type stagedEntry struct {
		i      int
		stripe uint64
		idx    []int
	}
	staged := make([]stagedEntry, 0, len(entries))
	// One index arena for the whole batch, pre-sized so sub-slices never
	// move under a later grow.
	total := 0
	for i := range entries {
		total += len(entries[i].Values)
	}
	arena := make([]int, 0, total)
	// As in Ingest: charge, WAL append and histogram apply all happen
	// under the shared rotation lock, so an epoch seal can never slip
	// between the append and the apply — record order is state order.
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := range entries {
		e := &entries[i]
		if e.User == "" {
			errs[i] = errors.New("stream: user id must be non-empty")
			continue
		}
		if e.Group < 0 || e.Group >= len(t.groups) {
			errs[i] = fmt.Errorf("stream: group %d out of range [0,%d)", e.Group, len(t.groups))
			continue
		}
		g := t.groups[e.Group]
		if len(e.Values) == 0 {
			errs[i] = errors.New("stream: no values")
			continue
		}
		if len(e.Values) > g.Reports {
			errs[i] = fmt.Errorf("stream: group %d accepts at most %d reports per request", e.Group, g.Reports)
			continue
		}
		base := len(arena)
		idx, err := t.indices(e.Group, e.Values, arena[base:base])
		if err != nil {
			errs[i] = err
			continue
		}
		arena = arena[:base+len(idx)]
		stripe := hashUser(e.User)
		if prev, loaded := t.userGrp.loadOrStore(stripe, e.User, e.Group); loaded && prev != e.Group {
			errs[i] = fmt.Errorf("%w: user %s is bound to group %d", ErrWrongGroup, e.User, prev)
			continue
		}
		staged = append(staged, stagedEntry{i: i, stripe: stripe, idx: idx})
	}
	// Same-stripe serialization, batch form (see Ingest): every stripe the
	// batch touches is locked — in one global (group, stripe) order, so
	// concurrent batches cannot deadlock — and held across charge, WAL
	// append and apply, keeping per-stripe (and per-user ledger) apply
	// order equal to LSN order for bit-identical replay.
	nsh := t.cfg.Shards
	keys := make([]int, 0, len(staged))
	for _, sg := range staged {
		keys = append(keys, entries[sg.i].Group*nsh+int(sg.stripe%uint64(nsh)))
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	for _, k := range keys {
		t.live[k/nsh].shards[k%nsh].mu.Lock()
	}
	defer func() {
		for _, k := range keys {
			t.live[k/nsh].shards[k%nsh].mu.Unlock()
		}
	}()
	// Charge each staged entry; a failed charge rejects that entry alone.
	charged := staged[:0]
	for _, sg := range staged {
		e := &entries[sg.i]
		if err := t.acct.SpendN(e.User, t.groups[e.Group].Eps, len(e.Values)); err != nil {
			errs[sg.i] = err
			continue
		}
		charged = append(charged, sg)
	}
	staged = charged
	if t.st != nil && len(staged) > 0 {
		recs := entries // all-accepted batches log as-is, no copy
		if len(staged) != len(entries) {
			recs = make([]store.IngestEntry, len(staged))
			for j, sg := range staged {
				recs[j] = entries[sg.i]
			}
		}
		if _, err := t.st.AppendIngestBatch(t.name, recs); err != nil {
			// Not durable ⇒ not accepted: roll back every staged charge so
			// the rejected batch leaves no trace, and surface a retryable
			// store-down error per entry.
			for _, sg := range staged {
				e := &entries[sg.i]
				t.acct.Refund(e.User, t.groups[e.Group].Eps, len(e.Values))
				errs[sg.i] = fmt.Errorf("%w: %v", ErrStoreDown, err)
			}
			return errs
		}
	}
	for _, sg := range staged {
		e := &entries[sg.i]
		t.live[e.Group].stripe(sg.stripe).addLocked(sg.idx, e.Values)
	}
	return errs
}

// replayIngest re-applies one logged ingest record during recovery. The
// values re-run the normal validation/discretization path; the budget
// charge is forced (the record was admitted under the cap when logged)
// and only applied when the accountant does not already reflect it
// (withCharge). Erroring records — possible only if the spec changed
// under a tenant, which the spec-from-WAL recovery path prevents — are
// reported, not applied.
func (t *Tenant) replayIngest(user string, group int, values []float64, withCharge bool) error {
	if group < 0 || group >= len(t.groups) {
		return fmt.Errorf("stream: replay: group %d out of range", group)
	}
	buf := idxPool.Get().(*[]int)
	defer idxPool.Put(buf)
	idx, err := t.indices(group, values, (*buf)[:0])
	*buf = idx[:0]
	if err != nil {
		return err
	}
	stripe := hashUser(user)
	t.userGrp.loadOrStore(stripe, user, group)
	if withCharge {
		t.acct.ForceSpend(user, t.groups[group].Eps, len(values))
	}
	t.live[group].add(stripe, idx, values)
	return nil
}

// indices validates values for the tenant's task and appends their bucket
// indices to idx. NaN, ±Inf, out-of-domain values and (for frequency
// tenants) non-integral or out-of-range categories are rejected here, at
// the wire boundary, before any state changes; rejections wrap
// core.ErrDomain.
func (t *Tenant) indices(group int, values []float64, idx []int) ([]int, error) {
	if cap(idx) < len(values) {
		idx = make([]int, len(values))
	}
	idx = idx[:len(values)]
	if t.cfg.Spec.Task == core.TaskFrequency {
		k := float64(t.cfg.Spec.K)
		for j, v := range values {
			c := int(v)
			if v != float64(c) || v < 0 || v >= k {
				return idx, fmt.Errorf("%w: %g is not a category in [0,%d)",
					core.ErrDomain, v, t.cfg.Spec.K)
			}
			idx[j] = c
		}
		return idx, nil
	}
	d := t.disc[group]
	for j, v := range values {
		i, ok := d.Index(v)
		if !ok {
			dom := t.est.OutputDomain(group)
			return idx, fmt.Errorf("%w: %g outside output domain [%g,%g]",
				core.ErrDomain, v, dom.Lo, dom.Hi)
		}
		idx[j] = i
	}
	return idx, nil
}

// Rotate seals the live epoch, re-estimates the window and caches the
// snapshot. The sealed epoch enters the ring even when the window cannot
// be estimated yet (some group still empty) — the error then reports why
// no fresh cache exists, and the next epochs accumulate normally.
// Rotations are serialized; Rotate waits for an in-flight one.
func (t *Tenant) Rotate() (*Snapshot, error) {
	t.rotateMu.Lock()
	defer t.rotateMu.Unlock()
	return t.rotate()
}

// TryRotate is Rotate without the wait: when another rotation is already
// in flight it returns ErrRotating immediately, so a wire handler can
// answer 503 + Retry-After instead of stacking blocked rotations.
func (t *Tenant) TryRotate() (*Snapshot, error) {
	if !t.rotateMu.TryLock() {
		return nil, ErrRotating
	}
	defer t.rotateMu.Unlock()
	return t.rotate()
}

// sealLocked moves the live epoch into the sealed ring and bumps the
// epoch counter. Caller holds t.mu exclusively. When a seal hook is
// registered the sealed epoch's merge-plane delta is built and returned
// (nil otherwise): per-stripe sums are captured before the stripe fold
// so the coordinator can reproduce that fold bit-for-bit, and the
// cumulative budget ledger is exported here — under the exclusive lock
// no ingest can interleave, so ledger and histograms are one consistent
// cut.
func (t *Tenant) sealLocked() *EpochDelta {
	var delta *EpochDelta
	if t.onSeal != nil {
		delta = &EpochDelta{Tenant: t.name, StripeSums: make([][]float64, len(t.groups))}
		for i, s := range t.live {
			ss := make([]float64, len(s.shards))
			for j := range s.shards {
				ss[j] = s.shards[j].sum
			}
			delta.StripeSums[i] = ss
		}
	}
	eh := epochHist{
		counts: make([][]float64, len(t.groups)),
		sums:   make([]float64, len(t.groups)),
		ns:     make([]float64, len(t.groups)),
	}
	for i, s := range t.live {
		eh.counts[i] = make([]float64, t.bkt[i])
		eh.sums[i], eh.ns[i] = s.mergeLocked(eh.counts[i])
	}
	t.live = t.freshLive()
	t.sealed = append(t.sealed, eh)
	if over := len(t.sealed) - t.cfg.Window.Span; over > 0 {
		t.sealed = append([]epochHist(nil), t.sealed[over:]...)
	}
	t.seq++
	if delta != nil {
		delta.Epoch, delta.Seq = t.seq, t.seq
		// Sealed epochs are immutable: aliasing their histograms into the
		// delta is safe and keeps the seal allocation-light.
		delta.Counts, delta.Ns = eh.counts, eh.ns
		spend := t.acct.Export()
		delta.Spend = make([]wirebin.SpendEntry, 0, len(spend))
		for u, eps := range spend {
			delta.Spend = append(delta.Spend, wirebin.SpendEntry{User: u, Eps: eps})
		}
	}
	return delta
}

// replaySeal re-applies a logged rotation during recovery: seal only, no
// estimation (the recovered window is estimated once at the end).
func (t *Tenant) replaySeal(seq uint64) {
	t.mu.Lock()
	t.sealLocked()
	t.seq = seq
	t.mu.Unlock()
}

func (t *Tenant) rotate() (*Snapshot, error) {
	t.mu.Lock()
	if t.st != nil {
		// The rotation record must be durable before the seal: its WAL
		// position splits ingest records into this epoch and the next, so
		// a crash after the append replays the seal at exactly this point.
		// A failed append aborts the rotation — the live epoch keeps
		// accumulating and the clock retries next epoch.
		lsn, err := t.st.AppendRotate(t.name, t.seq+1)
		if err != nil {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrStoreDown, err)
		}
		t.walStart = lsn + 1
	}
	delta := t.sealLocked()
	hook := t.onSeal
	seq := t.seq
	window := append([]epochHist(nil), t.sealed...)
	t.mu.Unlock()
	t.met.rotations.Inc()
	t.lastRotate.Store(time.Now().UnixNano()) //dapvet:nondeterministic-ok epoch-age gauge, not estimate state
	if hook != nil && delta != nil {
		// Outside every lock: the hook (a node's delta pusher) may block
		// on the network without stalling ingest or other rotations.
		hook(delta)
	}

	snap, err := t.estimateWindow(window, nil, seq, false)
	if err != nil {
		return nil, err
	}
	// Rotations race only in the estimation phase (the seal above is
	// serialized): a slow wire-triggered rotation must not overwrite the
	// epoch clock's fresher snapshot, so publish only monotonically.
	for {
		old := t.cached.Load()
		if old != nil && old.Epoch >= snap.Epoch {
			break
		}
		if t.cached.CompareAndSwap(old, snap) {
			break
		}
	}
	return snap, nil
}

// Estimate returns a window estimate. With includeLive the unsealed live
// epoch is folded into the window and estimated on demand; otherwise the
// snapshot cached by the last successful rotation is returned.
func (t *Tenant) Estimate(includeLive bool) (*Snapshot, error) {
	if !includeLive {
		if snap := t.cached.Load(); snap != nil {
			return snap, nil
		}
		return nil, errors.New("stream: no sealed estimate yet (rotate first or request a live estimate)")
	}
	t.mu.RLock()
	window := append([]epochHist(nil), t.sealed...)
	liveHist := epochHist{
		counts: make([][]float64, len(t.groups)),
		sums:   make([]float64, len(t.groups)),
		ns:     make([]float64, len(t.groups)),
	}
	for i, s := range t.live {
		liveHist.counts[i] = make([]float64, t.bkt[i])
		liveHist.sums[i], liveHist.ns[i] = s.mergeLive(liveHist.counts[i])
	}
	seq := t.seq
	t.mu.RUnlock()
	return t.estimateWindow(window, &liveHist, seq, true)
}

// Cached returns the snapshot of the last successful rotation, nil if none.
func (t *Tenant) Cached() *Snapshot { return t.cached.Load() }

// LastRotation returns when the tenant last sealed a live epoch (zero
// before the first seal; replays during recovery do not count).
func (t *Tenant) LastRotation() time.Time {
	ns := t.lastRotate.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// estimateWindow merges the sealed window (plus the optional live epoch)
// into one histogram collection and runs the tenant's estimator through
// the unified EstimateHist surface. No locks are held: sealed epochs are
// immutable and the live epoch was copied.
func (t *Tenant) estimateWindow(window []epochHist, liveHist *epochHist, seq uint64, live bool) (*Snapshot, error) {
	h := len(t.groups)
	counts := make([][]float64, h)
	sums := make([]float64, h)
	var total float64
	for i := 0; i < h; i++ {
		counts[i] = make([]float64, t.bkt[i])
	}
	merge := func(eh *epochHist) {
		for i := 0; i < h; i++ {
			for b, c := range eh.counts[i] {
				counts[i][b] += c
			}
			sums[i] += eh.sums[i]
			total += eh.ns[i]
		}
	}
	for i := range window {
		merge(&window[i])
	}
	if liveHist != nil {
		merge(liveHist)
	}
	ctx := context.Background()
	if t.cfg.Warm {
		ctx = core.WithWarm(ctx, t.warm.Load())
	}
	start := time.Now() //dapvet:nondeterministic-ok duration metric, not estimate state
	res, err := t.est.EstimateHist(ctx,
		&core.HistCollection{Counts: counts, Sums: sums})
	t.met.estimateDur.Observe(time.Since(start).Seconds()) //dapvet:nondeterministic-ok duration metric, not estimate state
	if err != nil {
		return nil, err
	}
	t.met.warmHits.Add(uint64(res.WarmHits))
	if t.cfg.Warm && res.Warm != nil {
		t.warm.Store(res.Warm)
	}
	return &Snapshot{
		Tenant:  t.name,
		Task:    t.cfg.Spec.Task,
		Epoch:   seq,
		Live:    live,
		At:      time.Now(), //dapvet:nondeterministic-ok snapshot wall-clock stamp, not estimate state
		Reports: total,
		Result:  res,
	}, nil
}

// Status summarizes a tenant for monitoring.
type Status struct {
	// Name and Task identify the tenant.
	Name string
	Task core.TaskKind
	// Eps and Eps0 are the configured budgets.
	Eps, Eps0 float64
	// Scheme names the estimation scheme.
	Scheme string
	// Users is how many users have joined; Reporters how many have spent
	// budget.
	Users     int
	Reporters int
	// Epoch is the number of sealed epochs.
	Epoch uint64
	// GroupReports counts the reports per group currently in the window
	// (sealed window plus live epoch).
	GroupReports []float64
	// CachedEpoch is the epoch of the cached estimate (0 = none yet).
	CachedEpoch uint64
}

// Status returns a monitoring summary.
func (t *Tenant) Status() Status {
	st := Status{
		Name:   t.name,
		Task:   t.cfg.Spec.Task,
		Eps:    t.cfg.Spec.Eps,
		Eps0:   t.cfg.Spec.Eps0,
		Scheme: t.cfg.Spec.Scheme,
		Users:  t.Joined(),
	}
	st.Reporters = t.acct.Users()
	t.mu.RLock()
	st.Epoch = t.seq
	st.GroupReports = make([]float64, len(t.groups))
	for i := range t.groups {
		for e := range t.sealed {
			st.GroupReports[i] += t.sealed[e].ns[i]
		}
		st.GroupReports[i] += t.live[i].count()
	}
	t.mu.RUnlock()
	if snap := t.cached.Load(); snap != nil {
		st.CachedEpoch = snap.Epoch
	}
	return st
}

// Start launches the epoch clock when the configuration carries one
// (Window.Epoch > 0): the tenant rotates itself every epoch, keeping the
// cached estimate at most one epoch stale. Rotation errors (typically an
// empty window during warm-up) leave the previous cache in place. Start is
// a no-op for clockless tenants and when the clock already runs.
func (t *Tenant) Start() {
	if t.cfg.Window.Epoch <= 0 {
		return
	}
	t.clockMu.Lock()
	defer t.clockMu.Unlock()
	if t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(t.cfg.Window.Epoch)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_, _ = t.Rotate()
			}
		}
	}(t.stop, t.done)
}

// Stop halts the epoch clock (if running) and waits for it to exit.
func (t *Tenant) Stop() {
	t.clockMu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.clockMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
