package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wirebin"
)

// Coordinator is the merge plane of a multi-node deployment: N collector
// nodes ingest disjoint user partitions and push each sealed epoch as a
// delta frame; the coordinator merges the deltas per (tenant, epoch) and
// runs the shared EMF estimate path over the merged window — the same
// estimateWindow every single-node rotation uses, on an ephemeral tenant
// that never ingests directly.
//
// Merge semantics. Per epoch the coordinator keeps one delta per node,
// first delta wins (duplicate pushes are acknowledged and dropped — the
// merge is idempotent). An epoch publishes when every registered node
// has reported, or — once at least Quorum nodes have and the straggler
// timeout has passed — as a partial epoch flagged degraded. At publish
// the retained deltas are folded in sorted node order, making the merge
// independent of arrival order: histogram counts and report totals sum
// (integer-valued, exact in any order), per-stripe sums add across nodes
// and then fold in stripe-index order — reproducing the single-node
// stripe fold bit-for-bit when nodes own disjoint stripes — and budget
// ledgers reconcile per user by maximum of the cumulative spends
// (histograms add, spends take max, exactly the snapshot-merge rule).
// Deltas for an already-published epoch are counted as stragglers and
// dropped.
//
// Durability. With a store attached every accepted delta is WAL-logged
// (RecMergeDelta, raw frame bytes) before it merges, and
// RecoverCoordinator replays the log: published epochs re-publish from
// the identical sorted fold, in-flight epochs are reconstructed
// delta-for-delta — so a coordinator restart is bit-invisible to the
// estimates. The coordinator keeps no snapshots; its WAL is truncated
// only by operator intervention, which is acceptable for the epoch
// cadences it serves (documented in DESIGN.md).
type Coordinator struct {
	mu      sync.Mutex
	nodes   map[string]*nodeState
	quorum  int
	timeout time.Duration
	st      *store.Store
	replay  bool // recovery replay: no WAL re-append, no metric counts
	tenants map[string]*coordTenant
	now     func() time.Time

	clockMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}
}

// nodeState tracks per-node liveness.
type nodeState struct {
	lastEpoch uint64
	lastSeen  time.Time
	deltas    uint64
}

// coordTenant is one tenant's merge state.
type coordTenant struct {
	t       *Tenant // ephemeral estimator; never ingested, clock never started
	stripes int
	pending map[uint64]*mergeEpoch
	// published is the highest published epoch; window is the merged
	// sealed ring (≤ Span epochs, newest last) feeding estimateWindow.
	published uint64
	window    []epochHist
	// ledger is the merged cumulative per-user spend (max across nodes).
	ledger map[string]float64
	// degraded marks the latest published epoch as partial (quorum
	// publish after the straggler timeout, or an epoch gap).
	degraded    bool
	lastPublish time.Time
	lastErr     error // estimate error of the latest publish, nil if clean
	cached      *Snapshot
}

// mergeEpoch is one in-flight epoch: the retained delta per node and
// when the first one arrived (the straggler clock).
type mergeEpoch struct {
	deltas  map[string]*wirebin.Delta
	firstAt time.Time
}

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// Nodes are the registered node ids. Every node is expected to push
	// one delta per (tenant, epoch); the set is fixed for the
	// coordinator's lifetime.
	Nodes []string
	// Quorum is the minimum number of nodes whose deltas must be present
	// before the straggler timeout may publish a partial epoch
	// (default: all registered nodes — partial publishes off).
	Quorum int
	// Straggler is how long after an epoch's first delta the coordinator
	// waits for the remaining nodes before a quorum publish
	// (default 30s).
	Straggler time.Duration
	// Store, when set, WAL-logs tenant registrations and accepted deltas
	// for bit-identical crash recovery (RecoverCoordinator). The
	// coordinator does not own the store's lifetime.
	Store *store.Store
}

// MergeResult reports what Apply did with a delta.
type MergeResult struct {
	// Status is "merged" (retained, epoch still open or just published),
	// "duplicate" (this node already reported the epoch) or "late" (the
	// epoch was already published; the delta is dropped and counted as a
	// straggler).
	Status string
	// Epoch is the delta's epoch; Published the tenant's highest
	// published epoch after this apply; Degraded whether that publish
	// was partial.
	Epoch     uint64
	Published uint64
	Degraded  bool
}

// Sentinel errors of the merge plane.
var (
	// ErrUnknownNode rejects deltas from node ids outside the registered set.
	ErrUnknownNode = errors.New("stream: delta from unregistered node")
	// ErrUnknownTenant rejects deltas for tenants the coordinator does not host.
	ErrUnknownTenant = errors.New("stream: delta for unknown tenant")
	// ErrShapeMismatch rejects deltas whose histogram geometry (groups,
	// buckets, stripes) disagrees with the tenant's spec.
	ErrShapeMismatch = errors.New("stream: delta shape does not match tenant spec")
)

// NewCoordinator builds a coordinator for a fixed node set.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("stream: coordinator needs at least one registered node")
	}
	nodes := make(map[string]*nodeState, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n == "" || len(n) > wirebin.MaxNodeLen {
			return nil, fmt.Errorf("stream: invalid node id %q", n)
		}
		if _, dup := nodes[n]; dup {
			return nil, fmt.Errorf("stream: duplicate node id %q", n)
		}
		nodes[n] = &nodeState{}
	}
	q := cfg.Quorum
	if q == 0 {
		q = len(nodes)
	}
	if q < 1 || q > len(nodes) {
		return nil, fmt.Errorf("stream: quorum %d out of range for %d nodes", q, len(nodes))
	}
	timeout := cfg.Straggler
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	if timeout < 0 {
		return nil, errors.New("stream: straggler timeout must be non-negative")
	}
	c := &Coordinator{
		nodes:   nodes,
		quorum:  q,
		timeout: timeout,
		st:      cfg.Store,
		tenants: make(map[string]*coordTenant),
		now:     time.Now,
	}
	metMergeNodes.Set(float64(len(nodes)))
	return c, nil
}

// RecoverCoordinator rebuilds a coordinator from its store (freshly
// opened, not yet loaded): tenant registrations and accepted deltas
// replay in LSN order, re-publishing every epoch that reaches its full
// node set from the identical sorted fold — bit-identical to the
// uncrashed coordinator. Epochs still in flight at the crash are
// reconstructed delta-for-delta; their straggler clocks restart at
// recovery time, so a partial publish that was only awaiting the
// timeout happens one timeout after boot instead.
func RecoverCoordinator(cfg CoordinatorConfig) (*Coordinator, *RecoveryReport, error) {
	if cfg.Store == nil {
		return nil, nil, errors.New("stream: RecoverCoordinator needs a store")
	}
	rec, err := cfg.Store.Load()
	if err != nil {
		return nil, nil, err
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{
		Records:  len(rec.Records),
		Torn:     rec.Torn,
		Warnings: rec.Warnings,
	}
	c.replay = true
	for i := range rec.Records {
		r := &rec.Records[i]
		switch r.Type {
		case store.RecTenantCreate:
			var sp core.Spec
			if err := json.Unmarshal(r.Spec, &sp); err != nil {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("merge replay: undecodable spec for tenant %q: %v", r.Tenant, err))
				continue
			}
			if err := c.AddTenantSpec(r.Tenant, sp); err != nil {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("merge replay: tenant %q: %v", r.Tenant, err))
				continue
			}
			rep.Applied++
		case store.RecMergeDelta:
			if _, err := c.Apply(r.Spec); err != nil {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("merge replay: delta lsn %d (node %q, epoch %d): %v",
						r.LSN, r.User, r.Seq, err))
				continue
			}
			rep.Applied++
		default:
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("merge replay: skipping %s record lsn %d", r.Type, r.LSN))
		}
	}
	c.replay = false
	c.mu.Lock()
	rep.Tenants = len(c.tenants)
	names := make([]string, 0, len(c.tenants))
	for name := range c.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ct := c.tenants[name]
		users := make([]string, 0, len(ct.ledger))
		for u := range ct.ledger {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, u := range users {
			rep.SpendAfter += ct.ledger[u]
		}
	}
	c.mu.Unlock()
	return c, rep, nil
}

// AddTenantSpec registers a tenant on the merge plane from its task spec
// — the same spec every node serves, so the ephemeral estimator built
// here has the identical groups, bucket resolutions and stripe geometry.
// With a store attached the registration is WAL-logged first.
func (c *Coordinator) AddTenantSpec(name string, sp core.Spec) error {
	if !tenantName.MatchString(name) {
		return fmt.Errorf("stream: invalid tenant name %q", name)
	}
	cfg, err := ConfigFromSpec(sp)
	if err != nil {
		return err
	}
	t, err := NewTenant(name, cfg)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tenants[name]; dup {
		return fmt.Errorf("stream: merge tenant %q already exists", name)
	}
	if c.st != nil && !c.replay {
		specJSON, err := json.Marshal(t.Spec())
		if err != nil {
			return err
		}
		if _, err := c.st.AppendTenantCreate(name, specJSON); err != nil {
			return fmt.Errorf("%w: %v", ErrStoreDown, err)
		}
	}
	c.tenants[name] = &coordTenant{
		t:       t,
		stripes: t.Shards(),
		pending: make(map[uint64]*mergeEpoch),
		ledger:  make(map[string]float64),
	}
	return nil
}

// Apply verifies, decodes and merges one delta frame, WAL-logging it
// first when the coordinator is durable. Invalid frames, unknown
// nodes/tenants and shape mismatches error without changing state;
// duplicates and stragglers are acknowledged in the result and dropped.
func (c *Coordinator) Apply(frame []byte) (MergeResult, error) {
	d, err := wirebin.DecodeDelta(frame)
	if err != nil {
		return MergeResult{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.nodes[d.Node]
	if !ok {
		return MergeResult{}, fmt.Errorf("%w: %q", ErrUnknownNode, d.Node)
	}
	ct, ok := c.tenants[d.Tenant]
	if !ok {
		return MergeResult{}, fmt.Errorf("%w: %q", ErrUnknownTenant, d.Tenant)
	}
	if err := ct.checkShape(d); err != nil {
		return MergeResult{}, err
	}
	now := c.now() //dapvet:nondeterministic-ok straggler/liveness clock, not estimate state
	ns.lastSeen = now
	if d.Epoch > ns.lastEpoch {
		ns.lastEpoch = d.Epoch
	}
	res := MergeResult{Epoch: d.Epoch}
	if d.Epoch <= ct.published {
		if !c.replay {
			metMergeStragglers.Inc()
		}
		res.Status = "late"
		res.Published, res.Degraded = ct.published, ct.degraded
		return res, nil
	}
	me := ct.pending[d.Epoch]
	if me != nil {
		if _, dup := me.deltas[d.Node]; dup {
			res.Status = "duplicate"
			res.Published, res.Degraded = ct.published, ct.degraded
			return res, nil
		}
	}
	if c.st != nil && !c.replay {
		// Durable before merged: a delta that changes coordinator state
		// must survive a crash, or recovery diverges from what was served.
		if _, err := c.st.AppendMergeDelta(d.Tenant, d.Node, d.Epoch, frame); err != nil {
			return MergeResult{}, fmt.Errorf("%w: %v", ErrStoreDown, err)
		}
	}
	if me == nil {
		me = &mergeEpoch{deltas: make(map[string]*wirebin.Delta), firstAt: now}
		ct.pending[d.Epoch] = me
	}
	me.deltas[d.Node] = d
	if !c.replay {
		ns.deltas++
		metMergeDeltas.With(d.Node).Inc()
	}
	c.advanceLocked(ct, now)
	res.Status = "merged"
	res.Published, res.Degraded = ct.published, ct.degraded
	return res, nil
}

// checkShape validates a delta's histogram geometry against the tenant.
func (ct *coordTenant) checkShape(d *wirebin.Delta) error {
	t := ct.t
	if len(d.Counts) != len(t.groups) {
		return fmt.Errorf("%w: %d groups, spec has %d", ErrShapeMismatch, len(d.Counts), len(t.groups))
	}
	for g, counts := range d.Counts {
		if len(counts) != t.bkt[g] {
			return fmt.Errorf("%w: group %d has %d buckets, spec has %d",
				ErrShapeMismatch, g, len(counts), t.bkt[g])
		}
		if len(d.StripeSums[g]) != ct.stripes {
			return fmt.Errorf("%w: group %d has %d stripes, spec has %d",
				ErrShapeMismatch, g, len(d.StripeSums[g]), ct.stripes)
		}
	}
	return nil
}

// advanceLocked publishes every epoch that is ready, in epoch order:
// full epochs immediately, quorum epochs once their straggler timeout
// has passed. An epoch gap (nothing pending at published+1 while later
// epochs wait) is crossed only by the timeout, and the skip marks the
// publish degraded. Caller holds c.mu.
func (c *Coordinator) advanceLocked(ct *coordTenant, now time.Time) {
	for len(ct.pending) > 0 {
		// Lowest in-flight epoch first: publishes are strictly ordered.
		low := uint64(0)
		for e := range ct.pending {
			if low == 0 || e < low {
				low = e
			}
		}
		me := ct.pending[low]
		full := len(me.deltas) == len(c.nodes)
		gap := low != ct.published+1
		timedOut := now.Sub(me.firstAt) >= c.timeout
		switch {
		case full && !gap:
			c.publishLocked(ct, low, false)
		case timedOut && len(me.deltas) >= c.quorum:
			c.publishLocked(ct, low, true)
		default:
			return
		}
	}
}

// publishLocked merges epoch e's retained deltas and re-estimates the
// window. The fold visits deltas in sorted node order — commutativity
// and associativity of the merge are by construction, since arrival
// order cannot influence the fold. Caller holds c.mu.
func (c *Coordinator) publishLocked(ct *coordTenant, e uint64, partial bool) {
	me := ct.pending[e]
	delete(ct.pending, e)
	nodes := make([]string, 0, len(me.deltas))
	for n := range me.deltas {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	t := ct.t
	h := len(t.groups)
	eh := epochHist{
		counts: make([][]float64, h),
		sums:   make([]float64, h),
		ns:     make([]float64, h),
	}
	stripeSums := make([][]float64, h)
	for g := 0; g < h; g++ {
		eh.counts[g] = make([]float64, t.bkt[g])
		stripeSums[g] = make([]float64, ct.stripes)
	}
	for _, n := range nodes {
		d := me.deltas[n]
		for g := 0; g < h; g++ {
			for b, cnt := range d.Counts[g] {
				eh.counts[g][b] += cnt
			}
			eh.ns[g] += d.Ns[g]
			for s, sum := range d.StripeSums[g] {
				stripeSums[g][s] += sum
			}
		}
		for _, sp := range d.Spend {
			// Cumulative ledgers reconcile by max: re-deliveries and
			// node restarts can only repeat a spend, never undo one.
			if sp.Eps > ct.ledger[sp.User] {
				ct.ledger[sp.User] = sp.Eps
			}
		}
	}
	// Group sums fold per stripe in index order — the same fold
	// shardSet.mergeLocked performs at a single-node seal, so with
	// stripe-disjoint nodes the merged sum is bit-identical to it.
	for g := 0; g < h; g++ {
		var sum float64
		for _, s := range stripeSums[g] {
			sum += s
		}
		eh.sums[g] = sum
	}
	ct.window = append(ct.window, eh)
	if over := len(ct.window) - t.cfg.Window.Span; over > 0 {
		ct.window = append([]epochHist(nil), ct.window[over:]...)
	}
	degraded := partial || e != ct.published+1
	ct.published = e
	ct.degraded = degraded
	ct.lastPublish = c.now() //dapvet:nondeterministic-ok lag gauge input, not estimate state
	window := append([]epochHist(nil), ct.window...)
	snap, err := t.estimateWindow(window, nil, e, false)
	ct.lastErr = err
	if err == nil {
		ct.cached = snap
	}
	// Like a single-node rotation, an epoch whose window cannot be
	// estimated yet (a group still empty) stays sealed in the ring; the
	// error is surfaced on Estimate and /v1/admin/status.
}

// Tick runs the straggler check once: any tenant whose lowest in-flight
// epoch has a quorum and an expired timeout publishes it as degraded.
// Start runs Tick periodically; tests call it directly with a fake
// clock.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	now := c.now() //dapvet:nondeterministic-ok straggler clock, not estimate state
	for _, name := range c.tenantNamesLocked() {
		c.advanceLocked(c.tenants[name], now)
	}
	c.mu.Unlock()
}

// tenantNamesLocked returns tenant names sorted, for deterministic
// iteration. Caller holds c.mu.
func (c *Coordinator) tenantNamesLocked() []string {
	names := make([]string, 0, len(c.tenants))
	for n := range c.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Start launches the straggler clock with the given check interval
// (default: a quarter of the straggler timeout). Stop halts it.
func (c *Coordinator) Start(interval time.Duration) {
	if interval <= 0 {
		interval = c.timeout / 4
		if interval <= 0 {
			interval = time.Second
		}
	}
	c.clockMu.Lock()
	defer c.clockMu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		defer close(done)
		for {
			select {
			case <-ticker.C:
				c.Tick()
			case <-stop:
				return
			}
		}
	}(c.stop, c.done)
}

// Stop halts the straggler clock.
func (c *Coordinator) Stop() {
	c.clockMu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.clockMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Estimate returns the merged-window estimate for a tenant: the cached
// snapshot of the latest publish, or the publish error when the last
// merged window could not be estimated yet.
func (c *Coordinator) Estimate(tenant string) (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ct, ok := c.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if ct.cached == nil {
		if ct.lastErr != nil {
			return nil, ct.lastErr
		}
		return nil, errors.New("stream: no epoch published yet")
	}
	return ct.cached, nil
}

// Ledger returns a copy of a tenant's merged cumulative per-user budget
// ledger (max across nodes).
func (c *Coordinator) Ledger(tenant string) (map[string]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ct, ok := c.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	out := make(map[string]float64, len(ct.ledger))
	for u, eps := range ct.ledger {
		out[u] = eps
	}
	return out, nil
}

// MergeNodeStatus is one node's liveness on the merge plane.
type MergeNodeStatus struct {
	// Node is the registered node id.
	Node string
	// LastEpoch is the highest epoch the node has reported (0 = never).
	LastEpoch uint64
	// LastSeen is when its latest delta arrived (zero = never).
	LastSeen time.Time
	// Deltas counts its accepted deltas since boot.
	Deltas uint64
}

// MergeTenantStatus is one tenant's merge-plane state.
type MergeTenantStatus struct {
	// Tenant names the tenant.
	Tenant string
	// Published is the highest published epoch; Degraded whether that
	// publish was partial (quorum after a straggler timeout, or an
	// epoch gap).
	Published uint64
	Degraded  bool
	// Pending counts epochs with deltas retained but not yet published.
	Pending int
	// LastError is the estimate error of the latest publish, empty when
	// it produced a snapshot.
	LastError string
}

// MergeStatus summarizes the merge plane for /v1/admin/status.
type MergeStatus struct {
	// Nodes and Quorum echo the configuration; Straggler is the timeout.
	Nodes     []MergeNodeStatus
	Quorum    int
	Straggler time.Duration
	// Tenants lists per-tenant merge state, sorted by name.
	Tenants []MergeTenantStatus
	// Degraded is true when any tenant's latest publish was partial.
	Degraded bool
}

// Status reports the merge plane's current state.
func (c *Coordinator) Status() MergeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := MergeStatus{Quorum: c.quorum, Straggler: c.timeout}
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ns := c.nodes[n]
		st.Nodes = append(st.Nodes, MergeNodeStatus{
			Node: n, LastEpoch: ns.lastEpoch, LastSeen: ns.lastSeen, Deltas: ns.deltas,
		})
	}
	for _, name := range c.tenantNamesLocked() {
		ct := c.tenants[name]
		ts := MergeTenantStatus{
			Tenant:    name,
			Published: ct.published,
			Degraded:  ct.degraded,
			Pending:   len(ct.pending),
		}
		if ct.lastErr != nil {
			ts.LastError = ct.lastErr.Error()
		}
		st.Tenants = append(st.Tenants, ts)
		st.Degraded = st.Degraded || ct.degraded
	}
	return st
}

// SyncMetrics refreshes the merge plane's scrape-derived gauges: the
// registered node count and per-tenant publish lag. The /metrics
// handler calls it once per scrape.
//
//dapvet:scrape
func (c *Coordinator) SyncMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metMergeNodes.Set(float64(len(c.nodes)))
	now := c.now()
	for _, name := range c.tenantNamesLocked() {
		ct := c.tenants[name]
		if ct.lastPublish.IsZero() {
			metMergeEpochLag.With(name).Set(-1)
		} else {
			metMergeEpochLag.With(name).Set(now.Sub(ct.lastPublish).Seconds())
		}
	}
}
