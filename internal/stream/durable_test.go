package stream_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/stream"
)

// durableSpec is the task spec the crash tests run: warm start off so
// every estimate is a pure function of the window histograms — the
// precondition for the bit-identity assertions below.
func durableSpec(mode stream.WindowMode) core.Spec {
	sp := core.Spec{
		Task: core.TaskMean, Eps: 1, Eps0: 0.25,
		Scheme: core.SchemeEMF.String(), EMFMaxIter: 40,
		Serve: &core.ServeSpec{Buckets: 16, Shards: 4, Window: mode.String(), Span: 2},
	}
	return sp
}

// report is one pre-generated ingest request.
type report struct {
	user  string
	group int
	vals  []float64
}

// workload deterministically generates n users per group, each reporting
// the exact number of perturbed values their group demands. The fixed
// seed makes reference and crashed runs feed identical floats.
func workload(t *testing.T, groups []core.Group, n int) []report {
	t.Helper()
	r := rng.New(42)
	mechs := make([]*pm.Mechanism, len(groups))
	for g := range groups {
		m, err := pm.New(groups[g].Eps)
		if err != nil {
			t.Fatal(err)
		}
		mechs[g] = m
	}
	var out []report
	for i := 0; i < n; i++ {
		for g := range groups {
			vals := make([]float64, groups[g].Reports)
			for k := range vals {
				vals[k] = mechs[g].Perturb(r, 0.2)
			}
			out = append(out, report{user: "u" + itoa(i) + "g" + itoa(g), group: g, vals: vals})
		}
	}
	return out
}

// openDurable opens a store over dir (wrapped in flaky when given) and
// recovers a registry from it.
func openDurable(t *testing.T, dir string, flaky *store.Flaky) (*stream.Registry, *store.Store, *stream.RecoveryReport) {
	t.Helper()
	opts := store.Options{Sync: store.SyncOS}
	if flaky != nil {
		opts.FS = flaky
	}
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg, rep, err := stream.Recover(st)
	if err != nil {
		t.Fatal(err)
	}
	return reg, st, rep
}

func ingestAll(t *testing.T, tn *stream.Tenant, reports []report) {
	t.Helper()
	for _, r := range reports {
		if err := tn.Ingest(r.user, r.group, r.vals); err != nil {
			t.Fatalf("ingest %s: %v", r.user, err)
		}
	}
}

// tearNewestSegment appends a few garbage bytes (shorter than a frame
// header) to the newest WAL segment — the torn tail a kill -9 mid-write
// leaves behind.
func tearNewestSegment(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range ents { // ReadDir sorts, so the last wal-* wins
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			newest = filepath.Join(dir, e.Name())
		}
	}
	if newest == "" {
		t.Fatal("no WAL segment to tear")
	}
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryMatrix is the fault-injection matrix from the issue:
// kill the collector at {mid-ingest, mid-rotation, mid-snapshot, torn WAL
// tail} × {tumbling, sliding} and assert that (a) recovered estimates are
// bit-for-bit identical to an uninterrupted reference run over the same
// reports, and (b) recorded ε spend never decreases across the crash.
// "Kill" means abandoning registry and store without any shutdown
// courtesy — no final snapshot, no WAL close — exactly what kill -9
// leaves behind (every accepted record is already written to the kernel).
func TestCrashRecoveryMatrix(t *testing.T) {
	const users = 16
	for _, mode := range []stream.WindowMode{stream.Tumbling, stream.Sliding} {
		for _, point := range []string{"mid-ingest", "mid-rotation", "mid-snapshot", "torn-tail"} {
			t.Run(mode.String()+"/"+point, func(t *testing.T) {
				sp := durableSpec(mode)

				// Reference: the full workload, uninterrupted, on an
				// ephemeral tenant. Rotation points match the crashed run.
				ref, err := stream.NewTenantSpec("t", sp)
				if err != nil {
					t.Fatal(err)
				}
				reports := workload(t, ref.Groups(), users)
				half, threeQ := len(reports)/2, 3*len(reports)/4
				ingestAll(t, ref, reports[:half])
				if _, err := ref.Rotate(); err != nil {
					t.Fatal(err)
				}
				ingestAll(t, ref, reports[half:threeQ])
				ingestAll(t, ref, reports[threeQ:])
				refSnap, err := ref.Rotate()
				if err != nil {
					t.Fatal(err)
				}

				// Crashed run: same workload against a durable tenant,
				// killed at the scenario's point and recovered.
				dir := t.TempDir()
				flaky := store.NewFlaky(nil)
				reg, _, _ := openDurable(t, dir, flaky)
				tn, err := reg.CreateSpec("t", sp)
				if err != nil {
					t.Fatal(err)
				}
				ingestAll(t, tn, reports[:half])
				if _, err := tn.Rotate(); err != nil {
					t.Fatal(err)
				}
				switch point {
				case "mid-ingest":
					ingestAll(t, tn, reports[half:threeQ])
				case "mid-rotation":
					// The kill lands right after the rotation above became
					// durable: the live epoch is empty, the seal is only in
					// the WAL's rotate record.
				case "mid-snapshot":
					// A good snapshot exists; the one cut at the kill point
					// dies mid-write (torn temp file). Recovery must fall
					// back to the good snapshot plus the WAL tail.
					if err := reg.Snapshot(); err != nil {
						t.Fatal(err)
					}
					ingestAll(t, tn, reports[half:threeQ])
					flaky.FailWrites(1, true, false)
					if err := reg.Snapshot(); err == nil {
						t.Fatal("injected snapshot fault not surfaced")
					}
				case "torn-tail":
					ingestAll(t, tn, reports[half:threeQ])
					// One extra user's append dies half-written: the charge
					// is refunded, the request is rejected, and the store
					// repairs its own tail in place (truncating the failed
					// batch's bytes) since the process survived the fault.
					flaky.FailWrites(1, true, false)
					extra := make([]float64, tn.Groups()[0].Reports)
					if err := tn.Ingest("torn-extra", 0, extra); err == nil {
						t.Fatal("torn append did not reject the request")
					}
					if got := tn.Accountant().Spent("torn-extra"); got != 0 {
						t.Fatalf("rejected request left %g spend", got)
					}
				}
				spentBefore := tn.Accountant().TotalSpent()
				if point == "torn-tail" {
					// kill -9 mid-write leaves torn bytes the dead process
					// never got to repair — tear the newest segment directly;
					// recovery must truncate them.
					tearNewestSegment(t, dir)
				}

				// Kill. Recover from the same dir with a fresh store.
				reg2, _, rep := openDurable(t, dir, nil)
				tn2, ok := reg2.Get("t")
				if !ok {
					t.Fatal("tenant lost across crash")
				}
				if (point == "torn-tail") != rep.Torn {
					t.Errorf("recovery torn=%v at point %s", rep.Torn, point)
				}

				// Budget monotonicity: recovered spend covers every acked
				// charge.
				if got := tn2.Accountant().TotalSpent(); got < spentBefore {
					t.Errorf("recovered spend %g < pre-crash %g", got, spentBefore)
				}

				// Finish the workload and compare the final estimate
				// bit-for-bit against the uninterrupted reference.
				switch point {
				case "mid-ingest", "mid-snapshot", "torn-tail":
					ingestAll(t, tn2, reports[threeQ:])
				case "mid-rotation":
					ingestAll(t, tn2, reports[half:threeQ])
					ingestAll(t, tn2, reports[threeQ:])
				}
				gotSnap, err := tn2.Rotate()
				if err != nil {
					t.Fatal(err)
				}
				if gotSnap.Epoch != refSnap.Epoch {
					t.Fatalf("epoch %d after recovery, reference %d", gotSnap.Epoch, refSnap.Epoch)
				}
				if math.Float64bits(gotSnap.Reports) != math.Float64bits(refSnap.Reports) {
					t.Fatalf("window reports %v, reference %v", gotSnap.Reports, refSnap.Reports)
				}
				if !reflect.DeepEqual(gotSnap.Result, refSnap.Result) {
					t.Errorf("recovered estimate differs from uninterrupted reference\n got: %+v\nwant: %+v",
						gotSnap.Result, refSnap.Result)
				}
				// Per-user ledgers match bitwise too.
				for _, r := range []report{reports[0], reports[len(reports)-1]} {
					got := tn2.Accountant().Spent(r.user)
					want := ref.Accountant().Spent(r.user)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Errorf("user %s spend %v, reference %v", r.user, got, want)
					}
				}
			})
		}
	}
}

// TestRecoverAfterCleanShutdown: Close drains a final snapshot, so a
// restart recovers everything — tenants, sealed epochs, cached estimate,
// ledger — with zero WAL replay needed beyond the snapshot.
func TestRecoverAfterCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	sp := durableSpec(stream.Sliding)
	reg, st, _ := openDurable(t, dir, nil)
	tn, err := reg.CreateSpec("t", sp)
	if err != nil {
		t.Fatal(err)
	}
	reports := workload(t, tn.Groups(), 8)
	ingestAll(t, tn, reports)
	want, err := tn.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, _, rep := openDurable(t, dir, nil)
	if rep.SnapshotLSN == 0 {
		t.Error("clean shutdown did not leave a snapshot")
	}
	tn2, ok := reg2.Get("t")
	if !ok {
		t.Fatal("tenant lost across clean restart")
	}
	got, err := tn2.Estimate(false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("cached estimate after restart differs:\n got %+v\nwant %+v", got.Result, want.Result)
	}
	if got := tn2.Accountant().TotalSpent(); got != tn.Accountant().TotalSpent() {
		t.Errorf("ledger changed across clean restart: %g vs %g", got, tn.Accountant().TotalSpent())
	}
}

// TestDurableTenantLifecycle: creations and deletions survive restarts.
func TestDurableTenantLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg, _, _ := openDurable(t, dir, nil)
	if _, err := reg.CreateSpec("keep", durableSpec(stream.Tumbling)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CreateSpec("drop", durableSpec(stream.Tumbling)); err != nil {
		t.Fatal(err)
	}
	if !reg.Delete("drop") {
		t.Fatal("delete failed")
	}

	reg2, _, rep := openDurable(t, dir, nil)
	if _, ok := reg2.Get("keep"); !ok {
		t.Error("surviving tenant lost")
	}
	if _, ok := reg2.Get("drop"); ok {
		t.Error("deleted tenant resurrected")
	}
	if rep.Tenants != 1 {
		t.Errorf("recovered %d tenants, want 1", rep.Tenants)
	}
}

// TestIngestStoreDownRefunds: when every WAL append fails, ingest rejects
// with ErrStoreDown and the budget charge is rolled back; reads keep
// serving the last good epoch.
func TestIngestStoreDownRefunds(t *testing.T) {
	dir := t.TempDir()
	flaky := store.NewFlaky(nil)
	reg, _, _ := openDurable(t, dir, flaky)
	tn, err := reg.CreateSpec("t", durableSpec(stream.Tumbling))
	if err != nil {
		t.Fatal(err)
	}
	reports := workload(t, tn.Groups(), 8)
	ingestAll(t, tn, reports)
	want, err := tn.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	spent := tn.Accountant().TotalSpent()

	flaky.FailWrites(1, false, true) // store down until Heal
	fresh := report{user: "late", group: 0, vals: make([]float64, tn.Groups()[0].Reports)}
	if err := tn.Ingest(fresh.user, fresh.group, fresh.vals); !errors.Is(err, stream.ErrStoreDown) {
		t.Fatalf("ingest with store down: %v, want ErrStoreDown", err)
	}
	if got := tn.Accountant().TotalSpent(); got != spent {
		t.Errorf("failed ingest changed total spend: %g vs %g", got, spent)
	}
	if _, err := tn.Rotate(); !errors.Is(err, stream.ErrStoreDown) {
		t.Fatalf("rotate with store down: %v, want ErrStoreDown", err)
	}
	got, err := tn.Estimate(false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Error("cached estimate changed while store was down")
	}

	flaky.Heal()
	if err := tn.Ingest(fresh.user, fresh.group, fresh.vals); err != nil {
		t.Fatalf("ingest after heal: %v", err)
	}
}

// TestConcurrentIngestRecoversBitIdentical: ingests racing from many
// goroutines — including users hashing to the same histogram stripe —
// must still recover bit-identically. The ingest path holds the stripe
// lock across WAL append + apply, so the live run's per-stripe float
// accumulation order equals LSN order, which is the order replay uses.
func TestConcurrentIngestRecoversBitIdentical(t *testing.T) {
	dir := t.TempDir()
	// A slow disk makes group-commit batches actually coalesce: while the
	// leader's write sleeps, more appenders pile into the pending batch, and
	// on flush they all wake together and race to apply — exactly the window
	// where an unserialized apply could land out of LSN order.
	flaky := store.NewFlaky(nil)
	flaky.Latency(500 * time.Microsecond)
	reg, _, _ := openDurable(t, dir, flaky)
	sp := durableSpec(stream.Tumbling)
	sp.Serve.Shards = 2 // few stripes: force same-stripe collisions
	tn, err := reg.CreateSpec("t", sp)
	if err != nil {
		t.Fatal(err)
	}
	reports := workload(t, tn.Groups(), 48)
	// Spread report magnitudes across ~32 binary decades (exact power-of-two
	// scaling keeps every value in the PM output domain). Summing mixed
	// magnitudes is order-sensitive in almost every permutation, so a single
	// same-stripe apply that lands out of LSN order flips the sum's low bits.
	for i, r := range reports {
		for k := range r.vals {
			r.vals[k] = math.Ldexp(r.vals[k], -((i + k) % 32))
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []stream.BatchEntry
			for i := w; i < len(reports); i += workers {
				r := reports[i]
				if w%2 == 0 {
					// Even workers exercise the single-report path...
					if err := tn.Ingest(r.user, r.group, r.vals); err != nil {
						t.Errorf("ingest %s: %v", r.user, err)
					}
					continue
				}
				// ...odd workers the batched one, three reports at a time.
				batch = append(batch, stream.BatchEntry{User: r.user, Group: r.group, Values: r.vals})
				if len(batch) == 3 {
					for j, err := range tn.IngestBatch(batch) {
						if err != nil {
							t.Errorf("batch ingest %s: %v", batch[j].User, err)
						}
					}
					batch = batch[:0]
				}
			}
			for j, err := range tn.IngestBatch(batch) {
				if err != nil {
					t.Errorf("batch ingest %s: %v", batch[j].User, err)
				}
			}
		}(w)
	}
	wg.Wait()
	want, err := tn.Rotate()
	if err != nil {
		t.Fatal(err)
	}

	// Kill (no shutdown courtesy) and recover; recovery re-estimates the
	// replayed window into the cache.
	reg2, _, _ := openDurable(t, dir, nil)
	tn2, ok := reg2.Get("t")
	if !ok {
		t.Fatal("tenant lost across crash")
	}
	got, err := tn2.Estimate(false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Reports) != math.Float64bits(want.Reports) {
		t.Fatalf("window reports %v, reference %v", got.Reports, want.Reports)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("recovered estimate differs from the concurrent live run\n got: %+v\nwant: %+v",
			got.Result, want.Result)
	}
}
