package stream

import (
	"repro/internal/wirebin"
)

// EpochDelta is one sealed epoch exported for the merge plane: the
// tenant's per-group bucket counts and report totals, the per-stripe
// value sums, and the node's cumulative per-user budget ledger at seal
// time. It is the decoded form of a wirebin delta frame — a node's seal
// hook fills Node and ships wirebin.EncodeDelta(d); the coordinator
// merges decoded deltas from many nodes into the same epochHist shape a
// single-node seal would have produced.
//
// Sums travel per stripe rather than per group because group sums are
// floating-point accumulations: the coordinator re-folds stripes in
// stripe-index order — exactly the single-node seal's fold — so when
// nodes own disjoint stripes (route users with StripeOf) the merged sum
// is bit-identical to one node ingesting everything.
type EpochDelta = wirebin.Delta

// StripeOf returns the histogram stripe user maps to in a tenant with
// the given stripe count — the same FNV-1a assignment the engine uses
// internally. A multi-node deployment routes each user to node
// StripeOf(user, shards) % nodes so every stripe has exactly one owner,
// the condition under which merged sums are bit-identical to
// single-node ingestion (counts merge exactly regardless).
func StripeOf(user string, shards int) int {
	return int(hashUser(user) % uint64(shards))
}

// SetSealHook registers fn to receive an EpochDelta after every live
// seal (rotations; replays during recovery do not fire it). The hook
// runs outside the tenant's locks on the rotating goroutine — a slow
// hook delays that rotation's estimate but never blocks ingest. Pass
// nil to clear. The delta's Node field is left empty for the hook to
// fill; its Counts/Ns alias the sealed epoch's immutable histograms.
func (t *Tenant) SetSealHook(fn func(*EpochDelta)) {
	t.mu.Lock()
	t.onSeal = fn
	t.mu.Unlock()
}

// Shards returns the tenant's per-group stripe count — the shards value
// delta partitioning must agree on across nodes.
func (t *Tenant) Shards() int { return t.cfg.Shards }

// SetSealHook registers fn on every current and future tenant of the
// registry (see Tenant.SetSealHook). A node-role collector installs its
// delta pusher here once, after recovery — replayed seals never fire
// the hook, so recovery cannot re-push old epochs.
func (r *Registry) SetSealHook(fn func(*EpochDelta)) {
	r.mu.Lock()
	r.sealHook = fn
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	for _, t := range ts {
		t.SetSealHook(fn)
	}
}
