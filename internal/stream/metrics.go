package stream

import (
	"time"

	"repro/internal/metrics"
)

// Per-tenant metric families. Each Tenant binds its children once at
// construction (tenantMetrics), so the ingest hot path increments plain
// pre-bound counters — no label hashing, no allocation, preserving the
// TestIngestSteadyStateAllocFree invariant with instrumentation on.
// Budget and lag gauges are derived at scrape time by SyncMetrics.
var (
	metIngested = metrics.NewCounterVec("dap_stream_reports_ingested_total",
		"Report values accepted into the live epoch.", "tenant")
	metRejected = metrics.NewCounterVec("dap_stream_reports_rejected_total",
		"Ingest requests rejected (validation, binding, budget or store-down).", "tenant")
	metRotations = metrics.NewCounterVec("dap_stream_epoch_rotations_total",
		"Epoch seals performed (replays during recovery not counted).", "tenant")
	metEstimateDur = metrics.NewHistogramVec("dap_stream_estimate_duration_seconds",
		"Window estimation latency (EstimateHist, cached rotations and live estimates).",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}, "tenant")
	metWarmHits = metrics.NewCounterVec("dap_stream_warm_hits_total",
		"Solver runs seeded from a previous fit during window estimation.", "tenant")

	metEpochLag = metrics.NewGaugeVec("dap_stream_epoch_lag_seconds",
		"Seconds since the tenant last sealed an epoch; -1 before the first seal.", "tenant")
	metTenants = metrics.NewGauge("dap_stream_tenants",
		"Registered tenants.")

	metBudgetSpent = metrics.NewGaugeVec("dap_privacy_budget_spent_eps",
		"Total privacy budget consumed across the tenant's reporters (sum of per-user spend).", "tenant")
	metBudgetCap = metrics.NewGaugeVec("dap_privacy_budget_cap_eps",
		"Per-user privacy budget cap epsilon.", "tenant")
	metBudgetRemaining = metrics.NewGaugeVec("dap_privacy_budget_remaining_eps",
		"Budget the tenant's current reporters may still spend (reporters x cap - spent).", "tenant")
	metReporters = metrics.NewGaugeVec("dap_privacy_reporters",
		"Users with recorded budget spend.", "tenant")

	// Merge-plane families (Coordinator). Deltas and stragglers count
	// live merges only (recovery replays are silent, like rotations);
	// the node and lag gauges are refreshed at scrape time by
	// Coordinator.SyncMetrics.
	metMergeDeltas = metrics.NewCounterVec("dap_merge_deltas_total",
		"Epoch deltas accepted and merged by the coordinator.", "node")
	metMergeStragglers = metrics.NewCounter("dap_merge_stragglers_total",
		"Deltas that arrived after their epoch was already published (dropped).")
	metMergeNodes = metrics.NewGauge("dap_merge_nodes",
		"Collector nodes registered on the merge plane.")
	metMergeEpochLag = metrics.NewGaugeVec("dap_merge_epoch_lag_seconds",
		"Seconds since the coordinator last published a merged epoch; -1 before the first.", "tenant")
)

// tenantMetrics is a tenant's pre-bound metric handles.
type tenantMetrics struct {
	ingested    *metrics.Counter
	rejected    *metrics.Counter
	rotations   *metrics.Counter
	estimateDur *metrics.Histogram
	warmHits    *metrics.Counter
}

func bindTenantMetrics(name string) tenantMetrics {
	return tenantMetrics{
		ingested:    metIngested.With(name),
		rejected:    metRejected.With(name),
		rotations:   metRotations.With(name),
		estimateDur: metEstimateDur.With(name),
		warmHits:    metWarmHits.With(name),
	}
}

// dropTenantMetrics removes a deleted tenant's series from future scrapes.
// Counter families keep the lifetime totals of live tenants only — a
// deleted name's counts disappear rather than resetting to zero, which is
// the conventional series-deletion semantics.
func dropTenantMetrics(name string) {
	metIngested.Delete(name)
	metRejected.Delete(name)
	metRotations.Delete(name)
	metEstimateDur.Delete(name)
	metWarmHits.Delete(name)
	metEpochLag.Delete(name)
	metBudgetSpent.Delete(name)
	metBudgetCap.Delete(name)
	metBudgetRemaining.Delete(name)
	metReporters.Delete(name)
}

// SyncMetrics refreshes the scrape-derived gauges: tenant count, per-
// tenant epoch lag and privacy-budget levels, and (when a store is
// attached) the store gauges. The /metrics handler calls it once per
// scrape so the ingest path never pays for level computation.
//
//dapvet:scrape
func (r *Registry) SyncMetrics() {
	tenants := r.List()
	metTenants.Set(float64(len(tenants)))
	for _, t := range tenants {
		if last := t.LastRotation(); last.IsZero() {
			metEpochLag.With(t.name).Set(-1)
		} else {
			metEpochLag.With(t.name).Set(time.Since(last).Seconds())
		}
		users, spent := t.acct.Stats()
		cap := t.acct.Cap()
		metBudgetSpent.With(t.name).Set(spent)
		metBudgetCap.With(t.name).Set(cap)
		remaining := float64(users)*cap - spent
		if remaining < 0 {
			remaining = 0
		}
		metBudgetRemaining.With(t.name).Set(remaining)
		metReporters.With(t.name).Set(float64(users))
	}
	if r.st != nil {
		r.st.SyncMetrics() //dapvet:lockorder-ok r.st is attached only after Store.Load returned, so recovery no longer holds the store mutex
	}
}
