package stream_test

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/stream"
)

func meanConfig() stream.Config {
	return stream.Config{
		Spec: core.NewSpec(core.MeanTask(), core.WithBudget(1, 0.25),
			core.WithScheme(core.SchemeEMFStar)),
	}
}

func newMeanTenant(t *testing.T, cfg stream.Config) *stream.Tenant {
	t.Helper()
	tn, err := stream.NewTenant("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// fillTenant drives usersPerGroup honest users through every group:
// user (g,i) perturbs value with group g's budget once per report slot.
func fillTenant(t *testing.T, tn *stream.Tenant, r *rand.Rand, usersPerGroup int, lo, hi float64) {
	t.Helper()
	for g, grp := range tn.Groups() {
		mech, err := pm.New(grp.Eps)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < usersPerGroup; i++ {
			id := "g" + string(rune('0'+g)) + "u" + itoa(i)
			vals := make([]float64, grp.Reports)
			v := rng.Uniform(r, lo, hi)
			for k := range vals {
				vals[k] = mech.Perturb(r, v)
			}
			if err := tn.Ingest(id, g, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestParsers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want stream.Kind
	}{{"mean", stream.KindMean}, {"", stream.KindMean}, {"freq", stream.KindFreq}, {"sw", stream.KindDist}} {
		k, err := stream.ParseKind(tc.in)
		if err != nil || k != tc.want {
			t.Fatalf("ParseKind(%q) = %v, %v", tc.in, k, err)
		}
	}
	if _, err := stream.ParseKind("nope"); err == nil {
		t.Fatal("bad kind accepted")
	}
	if m, err := stream.ParseWindowMode("sliding"); err != nil || m != stream.Sliding {
		t.Fatalf("ParseWindowMode(sliding) = %v, %v", m, err)
	}
	if _, err := stream.ParseWindowMode("bogus"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	tn := newMeanTenant(t, meanConfig())
	cfg := tn.Config()
	if cfg.Shards != 8 || cfg.ExpectedUsers != 4096 || cfg.Window.Span != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// Per-group resolutions follow the paper's rule on the expected split.
	bkt := tn.Buckets()
	if len(bkt) != 3 {
		t.Fatalf("buckets = %v", bkt)
	}
	for i, b := range bkt {
		if b < 8 || b%2 != 0 {
			t.Fatalf("group %d resolution %d", i, b)
		}
		if i > 0 && bkt[i] <= bkt[i-1] {
			t.Fatalf("resolutions should grow with report volume: %v", bkt)
		}
	}
	// Tumbling forces span 1.
	c := meanConfig()
	c.Window = stream.WindowConfig{Mode: stream.Tumbling, Span: 5}
	if tn := newMeanTenant(t, c); tn.Config().Window.Span != 1 {
		t.Fatal("tumbling span not forced to 1")
	}
	for _, bad := range []stream.Config{
		{Spec: core.Spec{Task: core.TaskFrequency, Eps: 1, Eps0: 0.5}}, // K missing
		{Spec: core.Spec{Task: core.TaskMean, Eps: -1, Eps0: 0.5}},     // bad budgets
		{Spec: core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 0.5}, Shards: -1},
		{Spec: core.Spec{Task: "nope", Eps: 1, Eps0: 0.5}},            // unknown task
		{Spec: core.Spec{Task: core.TaskVariance, Eps: 1, Eps0: 0.5}}, // not streamable
	} {
		if _, err := stream.NewTenant("x", bad); err == nil {
			t.Fatalf("invalid config accepted: %+v", bad)
		}
	}
	if _, err := stream.NewTenant("", meanConfig()); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestJoinRoundRobin(t *testing.T) {
	tn := newMeanTenant(t, meanConfig())
	h := len(tn.Groups())
	seen := map[int]int{}
	for i := 0; i < 3*h; i++ {
		_, g := tn.Join()
		seen[g.Index]++
	}
	for g := 0; g < h; g++ {
		if seen[g] != 3 {
			t.Fatalf("group %d joined %d times", g, seen[g])
		}
	}
	if tn.Joined() != 3*h {
		t.Fatalf("joined = %d", tn.Joined())
	}
}

func TestIngestValidation(t *testing.T) {
	tn := newMeanTenant(t, meanConfig())
	dom := pmDomain(t, tn.Groups()[0].Eps)
	for _, tc := range []struct {
		name   string
		user   string
		group  int
		values []float64
	}{
		{"empty user", "", 0, []float64{0}},
		{"bad group", "u", 9, []float64{0}},
		{"negative group", "u", -1, []float64{0}},
		{"no values", "u", 0, nil},
		{"oversized", "u", 0, []float64{0, 0}}, // group 0 has 1 slot
		{"nan", "u", 0, []float64{math.NaN()}},
		{"+inf", "u", 0, []float64{math.Inf(1)}},
		{"-inf", "u", 0, []float64{math.Inf(-1)}},
		{"above domain", "u", 0, []float64{dom + 1}},
		{"below domain", "u", 0, []float64{-dom - 1}},
	} {
		if err := tn.Ingest(tc.user, tc.group, tc.values); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	// Nothing above may have consumed budget or mutated state.
	if tn.Accountant().Users() != 0 {
		t.Fatal("rejected ingests consumed budget")
	}
	st := tn.Status()
	for _, n := range st.GroupReports {
		if n != 0 {
			t.Fatalf("rejected ingests landed: %v", st.GroupReports)
		}
	}
}

func pmDomain(t *testing.T, eps float64) float64 {
	t.Helper()
	m, err := pm.New(eps)
	if err != nil {
		t.Fatal(err)
	}
	return m.OutputDomain().Hi
}

func TestIngestGroupBindingAndBudget(t *testing.T) {
	tn := newMeanTenant(t, meanConfig())
	// First report binds u to group 0.
	if err := tn.Ingest("u", 0, []float64{0.1}); err != nil {
		t.Fatal(err)
	}
	err := tn.Ingest("u", 1, []float64{0.1})
	if !errors.Is(err, stream.ErrWrongGroup) {
		t.Fatalf("cross-group report: %v", err)
	}
	// Group 0 costs ε per report; u's budget is exhausted.
	err = tn.Ingest("u", 0, []float64{0.1})
	if !errors.Is(err, privacy.ErrBudgetExceeded) {
		t.Fatalf("overspend: %v", err)
	}
	// Atomicity: group 2 has 4 slots of ε/4. A fresh user uploading 3 then
	// 2 must be rejected on the second batch with nothing recorded.
	if err := tn.Ingest("v", 2, []float64{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	before := tn.Accountant().Spent("v")
	if err := tn.Ingest("v", 2, []float64{0, 0}); !errors.Is(err, privacy.ErrBudgetExceeded) {
		t.Fatalf("partial batch: %v", err)
	}
	if got := tn.Accountant().Spent("v"); got != before {
		t.Fatalf("rejected batch changed spent: %v → %v", before, got)
	}
	if err := tn.Ingest("v", 2, []float64{0}); err != nil {
		t.Fatalf("final slot rejected: %v", err)
	}
}

func TestFreqIngestValidation(t *testing.T) {
	tn, err := stream.NewTenant("f", stream.Config{
		Spec: core.Spec{Task: core.TaskFrequency, Eps: 1, Eps0: 0.5, K: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{{4}, {-1}, {1.5}, {math.NaN()}} {
		if err := tn.Ingest("u", 0, bad); err == nil {
			t.Fatalf("category %v accepted", bad)
		}
	}
	if err := tn.Ingest("u", 0, []float64{3}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateTumblingAndSliding(t *testing.T) {
	r := rng.New(1)
	// Tumbling: each epoch estimated on its own.
	c := meanConfig()
	c.ExpectedUsers = 300
	tumb := newMeanTenant(t, c)
	fillTenant(t, tumb, r, 100, -0.5, 0.1)
	snap, err := tumb.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || snap.Live || snap.Result == nil {
		t.Fatalf("snapshot %+v", snap)
	}
	firstReports := snap.Reports
	if firstReports != float64(100*(1+2+4)) {
		t.Fatalf("window reports = %v", firstReports)
	}
	if got := tumb.Cached(); got != snap {
		t.Fatal("rotation did not cache")
	}
	// Second epoch holds fresh users (first epoch's spent their ε).
	for g, grp := range tumb.Groups() {
		mech, _ := pm.New(grp.Eps)
		for i := 0; i < 100; i++ {
			vals := make([]float64, grp.Reports)
			for k := range vals {
				vals[k] = mech.Perturb(r, 0.3)
			}
			if err := tumb.Ingest("e2g"+itoa(g)+"u"+itoa(i), g, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap2, err := tumb.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 2 || snap2.Reports != firstReports {
		t.Fatalf("tumbling window leaked epochs: %+v", snap2)
	}

	// Sliding span 2: the second window covers both epochs.
	c = meanConfig()
	c.ExpectedUsers = 300
	c.Window = stream.WindowConfig{Mode: stream.Sliding, Span: 2}
	slide := newMeanTenant(t, c)
	fillTenant(t, slide, r, 100, -0.5, 0.1)
	if snap, err = slide.Rotate(); err != nil {
		t.Fatal(err)
	}
	one := snap.Reports
	for g, grp := range slide.Groups() {
		mech, _ := pm.New(grp.Eps)
		for i := 0; i < 50; i++ {
			vals := make([]float64, grp.Reports)
			for k := range vals {
				vals[k] = mech.Perturb(r, 0.3)
			}
			if err := slide.Ingest("s2g"+itoa(g)+"u"+itoa(i), g, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap2, err = slide.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if want := one + float64(50*(1+2+4)); snap2.Reports != want {
		t.Fatalf("sliding window reports = %v, want %v", snap2.Reports, want)
	}
	// A third rotation (empty live epoch) drops the first epoch.
	snap3, err := slide.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(50 * (1 + 2 + 4)); snap3.Reports != want {
		t.Fatalf("sliding window did not slide: %v, want %v", snap3.Reports, want)
	}
}

func TestEstimateLiveAndCached(t *testing.T) {
	r := rng.New(2)
	c := meanConfig()
	c.ExpectedUsers = 300
	tn := newMeanTenant(t, c)
	if _, err := tn.Estimate(false); err == nil {
		t.Fatal("cached estimate before any rotation")
	}
	if _, err := tn.Estimate(true); err == nil {
		t.Fatal("live estimate on empty tenant")
	}
	fillTenant(t, tn, r, 120, -0.4, 0)
	live, err := tn.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	if !live.Live || live.Result == nil || live.Epoch != 0 {
		t.Fatalf("live snapshot %+v", live)
	}
	if math.Abs(live.Result.Mean-(-0.2)) > 0.35 {
		t.Fatalf("live mean %v implausible", live.Result.Mean)
	}
	var wSum float64
	for _, w := range live.Result.Weights {
		wSum += w
	}
	if math.Abs(wSum-1) > 1e-9 {
		t.Fatalf("weights sum %v", wSum)
	}
}

func TestEpochClock(t *testing.T) {
	r := rng.New(3)
	c := meanConfig()
	c.ExpectedUsers = 300
	c.Window = stream.WindowConfig{Mode: stream.Tumbling, Epoch: 10 * time.Millisecond}
	tn := newMeanTenant(t, c)
	fillTenant(t, tn, r, 100, -0.5, 0.1)
	tn.Start()
	defer tn.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for tn.Cached() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	snap := tn.Cached()
	if snap == nil {
		t.Fatal("epoch clock produced no cached estimate")
	}
	if snap.Epoch < 1 || snap.Result == nil {
		t.Fatalf("clocked snapshot %+v", snap)
	}
	tn.Stop()
	// Stop is idempotent and Start restarts.
	tn.Stop()
	tn.Start()
	tn.Stop()
}

func TestRegistry(t *testing.T) {
	reg := stream.NewRegistry()
	a, err := reg.Create("alpha", meanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("alpha", meanConfig()); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := reg.Create("bad name!", meanConfig()); err == nil {
		t.Fatal("invalid name accepted")
	}
	if _, err := reg.Create("x", stream.Config{Spec: core.Spec{Task: core.TaskMean, Eps: -1, Eps0: 1}}); err == nil {
		t.Fatal("invalid config accepted")
	}
	b, err := reg.Create("beta", stream.Config{Spec: core.Spec{Task: core.TaskFrequency, Eps: 1, Eps0: 0.5, K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reg.Get("alpha"); !ok || got != a {
		t.Fatal("Get(alpha) broken")
	}
	ts := reg.List()
	if len(ts) != 2 || ts[0] != a || ts[1] != b {
		t.Fatalf("List = %v", ts)
	}
	if !reg.Delete("alpha") || reg.Delete("alpha") {
		t.Fatal("Delete semantics broken")
	}
	if _, ok := reg.Get("alpha"); ok {
		t.Fatal("deleted tenant still resolvable")
	}
	reg.Close()
}

func TestCrossTenantIsolation(t *testing.T) {
	r := rng.New(4)
	reg := stream.NewRegistry()
	cfg := meanConfig()
	cfg.ExpectedUsers = 300
	a, _ := reg.Create("a", cfg)
	b, _ := reg.Create("b", cfg)
	fillTenant(t, a, r, 120, -0.8, -0.4)
	fillTenant(t, b, r, 120, 0.4, 0.8)
	// Same user ids were used in both tenants: budgets are independent.
	if a.Accountant().Spent("g0u0") == 0 || b.Accountant().Spent("g0u0") == 0 {
		t.Fatal("budgets not tracked per tenant")
	}
	ea, err := a.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	if ea.Result.Mean >= 0 || eb.Result.Mean <= 0 {
		t.Fatalf("tenant estimates bled into each other: a=%v b=%v", ea.Result.Mean, eb.Result.Mean)
	}
	// Deleting one tenant leaves the other fully functional.
	reg.Delete("a")
	if _, err := b.Estimate(true); err != nil {
		t.Fatal(err)
	}
}

// A freq tenant end to end: k-RR perturbed categories in, frequency
// estimate out.
func TestFreqTenantEndToEnd(t *testing.T) {
	r := rng.New(6)
	tn, err := stream.NewTenant("f", stream.Config{
		Spec: core.NewSpec(core.FrequencyTask(4), core.WithBudget(2, 1),
			core.WithScheme(core.SchemeEMFStar)),
	})
	if err != nil {
		t.Fatal(err)
	}
	freq, err := core.NewFreqDAP(core.FreqParams{Eps: 2, Eps0: 1, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for g, grp := range tn.Groups() {
		mech := freq.Mechanism(g)
		for i := 0; i < 400; i++ {
			cat := 0 // heavily skewed truth
			if i%4 == 3 {
				cat = 1 + r.IntN(3)
			}
			vals := make([]float64, grp.Reports)
			for k := range vals {
				vals[k] = float64(mech.PerturbCat(r, cat))
			}
			if err := tn.Ingest("g"+itoa(g)+"u"+itoa(i), g, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap, err := tn.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Result == nil || len(snap.Result.Freqs) != 4 {
		t.Fatalf("freq snapshot %+v", snap)
	}
	if snap.Result.Freqs[0] < 0.5 {
		t.Fatalf("dominant category estimated at %v", snap.Result.Freqs[0])
	}
}
