package stream_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Concurrent ingest + rotate + estimate on one tenant. Run under -race in
// CI; the invariant checked at the end is conservation: every accepted
// report is in exactly one epoch of the (all-covering) sliding window.
func TestConcurrentIngestRotateEstimate(t *testing.T) {
	tn, err := stream.NewTenant("race", stream.Config{
		Spec: core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 0.25,
			Scheme: core.SchemeEMF.String(), EMFMaxIter: 40},
		Buckets: 16, Shards: 4,
		Window: stream.WindowConfig{Mode: stream.Sliding, Span: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		ingesters     = 4
		usersPerGroup = 120
	)
	groups := tn.Groups()
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(100 + w))
			mechs := make([]*pm.Mechanism, len(groups))
			for g := range groups {
				mechs[g], _ = pm.New(groups[g].Eps)
			}
			for i := 0; i < usersPerGroup; i++ {
				for g := range groups {
					id := "w" + itoa(w) + "g" + itoa(g) + "u" + itoa(i)
					vals := make([]float64, groups[g].Reports)
					for k := range vals {
						vals[k] = mechs[g].Perturb(r, 0.2)
					}
					if err := tn.Ingest(id, g, vals); err != nil {
						t.Error(err)
						return
					}
					accepted.Add(int64(len(vals)))
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // rotator
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_, _ = tn.Rotate()
			}
		}
	}()
	go func() { // estimator + status reader
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_, _ = tn.Estimate(true)
				_ = tn.Cached()
				_ = tn.Status()
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		return
	}
	// Final rotation folds any live remainder into the sealed window.
	snap, err := tn.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != float64(accepted.Load()) {
		t.Fatalf("window holds %v reports, accepted %d", snap.Reports, accepted.Load())
	}
}

// Two tenants hammered concurrently: no shared state, estimates land on
// their own data.
func TestConcurrentTenantsIsolated(t *testing.T) {
	reg := stream.NewRegistry()
	defer reg.Close()
	mk := func(name string) *stream.Tenant {
		tn, err := reg.Create(name, stream.Config{
			Spec: core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 0.5,
				Scheme: core.SchemeEMF.String(), EMFMaxIter: 40},
			Buckets: 16, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}
	a, b := mk("a"), mk("b")
	// The two tenants ingest populations 0.6 apart; EMF's no-attack
	// false-positive bias is side-symmetric, so the estimated means must
	// preserve a clear gap if (and only if) the histograms are isolated.
	drive := func(tn *stream.Tenant, seed uint64, lo, hi float64) func() {
		return func() {
			r := rng.New(seed)
			groups := tn.Groups()
			for i := 0; i < 150; i++ {
				for g := range groups {
					mech, _ := pm.New(groups[g].Eps)
					vals := make([]float64, groups[g].Reports)
					v := rng.Uniform(r, lo, hi)
					for k := range vals {
						vals[k] = mech.Perturb(r, v)
					}
					if err := tn.Ingest("g"+itoa(g)+"u"+itoa(i), g, vals); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}
	}
	var wg sync.WaitGroup
	for _, f := range []func(){drive(a, 21, -0.7, 0.1), drive(b, 22, -0.1, 0.7)} {
		wg.Add(1)
		go func(f func()) { defer wg.Done(); f() }(f)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	ea, err := a.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	if eb.Result.Mean-ea.Result.Mean < 0.2 {
		t.Fatalf("isolation violated: a=%v b=%v", ea.Result.Mean, eb.Result.Mean)
	}
}
