package stream_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stream"
)

// ingestCollection replays a batch collection into a tenant: group g's
// reports are split into per-user batches of g.Reports values, exactly the
// granularity the protocol prescribes (each user reports 2^g times).
func ingestCollection(t *testing.T, tn *stream.Tenant, col *core.Collection, workers int) {
	t.Helper()
	type task struct {
		user   string
		group  int
		values []float64
	}
	var tasks []task
	for g, reports := range col.Groups {
		slots := tn.Groups()[g].Reports
		u := 0
		for lo := 0; lo < len(reports); lo += slots {
			hi := min(lo+slots, len(reports))
			tasks = append(tasks, task{"g" + itoa(g) + "u" + itoa(u), g, reports[lo:hi]})
			u++
		}
	}
	if workers <= 1 {
		for _, k := range tasks {
			if err := tn.Ingest(k.user, k.group, k.values); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan task)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := range ch {
				if err := tn.Ingest(k.user, k.group, k.values); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	for _, k := range tasks {
		ch <- k
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// The engine-level histogram-equivalence invariant: a tenant fed the exact
// reports of a batch collection — one stripe, sequential ingest, per-group
// resolutions derived from the same population — produces the batch
// estimate bit for bit: the counts are the same integers, and the shard's
// running sum accumulates in the same order as stats.Sum over the flat
// collection.
func TestEngineEquivalenceBitForBit(t *testing.T) {
	const n = 1404
	p := core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeCEMFStar}
	d, err := core.NewDAP(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Uniform(r, -0.7, 0.3)
	}
	col, err := d.Collect(r, values, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}

	tn, err := stream.NewTenant("eq", stream.Config{
		Spec: core.Spec{Task: core.TaskMean, Eps: p.Eps, Eps0: p.Eps0,
			Scheme: p.Scheme.String()},
		ExpectedUsers: n, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestCollection(t, tn, col, 1)
	snap, err := tn.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	e := snap.Result
	if snap.Reports != float64(len(col.Groups[0])+len(col.Groups[1])+len(col.Groups[2])) {
		t.Fatalf("window lost reports: %v", snap.Reports)
	}
	if e.Mean != batch.Mean {
		t.Fatalf("mean: engine %v batch %v", e.Mean, batch.Mean)
	}
	if e.Gamma != batch.Gamma || e.PoisonedRight != batch.PoisonedRight {
		t.Fatalf("probe: engine (%v,%v) batch (%v,%v)", e.Gamma, e.PoisonedRight, batch.Gamma, batch.PoisonedRight)
	}
	for g := range batch.GroupMeans {
		if e.GroupMeans[g] != batch.GroupMeans[g] {
			t.Fatalf("group %d mean: engine %v batch %v", g, e.GroupMeans[g], batch.GroupMeans[g])
		}
		if e.Weights[g] != batch.Weights[g] {
			t.Fatalf("group %d weight differs", g)
		}
	}
}

// With striped shards and concurrent ingestion only the float summation
// order changes; counts stay identical integers, so per-group estimates
// must agree to 1e-12.
func TestEngineEquivalenceConcurrent(t *testing.T) {
	const n = 1404
	p := core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar}
	d, err := core.NewDAP(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Uniform(r, -0.7, 0.3)
	}
	col, err := d.Collect(r, values, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := stream.NewTenant("eqc", stream.Config{
		Spec: core.Spec{Task: core.TaskMean, Eps: p.Eps, Eps0: p.Eps0,
			Scheme: p.Scheme.String()},
		ExpectedUsers: n, Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestCollection(t, tn, col, 4)
	snap, err := tn.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	e := snap.Result
	if e.Gamma != batch.Gamma {
		t.Fatalf("gamma: engine %v batch %v (counts must be identical)", e.Gamma, batch.Gamma)
	}
	for g := range batch.GroupMeans {
		if diff := math.Abs(e.GroupMeans[g] - batch.GroupMeans[g]); diff > 1e-12 {
			t.Fatalf("group %d mean differs by %g", g, diff)
		}
	}
	if diff := math.Abs(e.Mean - batch.Mean); diff > 1e-12 {
		t.Fatalf("mean differs by %g", diff)
	}
}

// Rotation must preserve the sufficient statistic: reports ingested across
// several epochs estimate identically (sliding window spanning them all)
// to the same reports in one epoch — counts exactly, sums up to the
// re-association of float addition across epoch boundaries.
func TestEquivalenceAcrossEpochs(t *testing.T) {
	const n = 903
	p := core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar}
	d, _ := core.NewDAP(p)
	r := rng.New(12)
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Uniform(r, -0.5, 0.5)
	}
	col, err := d.Collect(r, values, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := stream.NewTenant("ep", stream.Config{
		Spec: core.Spec{Task: core.TaskMean, Eps: p.Eps, Eps0: p.Eps0,
			Scheme: p.Scheme.String()},
		ExpectedUsers: n, Shards: 1,
		Window: stream.WindowConfig{Mode: stream.Sliding, Span: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Split each group's reports over three epochs at user granularity.
	for g, reports := range col.Groups {
		slots := tn.Groups()[g].Reports
		u := 0
		for lo := 0; lo < len(reports); lo += slots {
			hi := min(lo+slots, len(reports))
			if err := tn.Ingest("g"+itoa(g)+"u"+itoa(u), g, reports[lo:hi]); err != nil {
				t.Fatal(err)
			}
			u++
			if u%100 == 0 {
				// Mid-stream rotations while later groups are still empty
				// seal the epoch but cannot estimate yet; that is expected.
				_, _ = tn.Rotate()
			}
		}
	}
	snap, err := tn.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Result.Gamma != batch.Gamma {
		t.Fatalf("epoch-split gamma %v != batch %v (counts must merge exactly)", snap.Result.Gamma, batch.Gamma)
	}
	if diff := math.Abs(snap.Result.Mean - batch.Mean); diff > 1e-12 {
		t.Fatalf("epoch-split mean differs by %g", diff)
	}
}
