package stream

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/store"
)

// tenantName constrains names to something URL-path and log friendly.
var tenantName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// Registry hosts many concurrent tenants in one process. Creation starts a
// tenant's epoch clock; deletion stops it. A registry built by Recover is
// durable: tenant lifecycle events are WAL-logged and StartSnapshots cuts
// periodic full snapshots (see durable.go).
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant

	// st is the durability layer, nil for an ephemeral registry.
	st *store.Store

	// sealHook, when set, is installed on every current and future
	// tenant (see SetSealHook).
	sealHook func(*EpochDelta)

	snapCtl  sync.Mutex
	stopSnap chan struct{}
	snapDone chan struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*Tenant)}
}

// Create builds, registers and starts a tenant. It fails when the name is
// invalid or already taken.
func (r *Registry) Create(name string, cfg Config) (*Tenant, error) {
	if !tenantName.MatchString(name) {
		return nil, fmt.Errorf("stream: invalid tenant name %q", name)
	}
	t, err := NewTenant(name, cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, ok := r.tenants[name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("stream: tenant %q already exists", name)
	}
	if r.st != nil {
		// The creation must be durable before the tenant is published:
		// the logged spec is what recreates the tenant on recovery, so a
		// failed append rejects the creation outright.
		specJSON, err := json.Marshal(t.Spec())
		if err != nil {
			r.mu.Unlock()
			return nil, err
		}
		lsn, err := r.st.AppendTenantCreate(name, specJSON)
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrStoreDown, err)
		}
		t.st = r.st
		t.walStart = lsn + 1
		t.acctFrom = lsn + 1
	}
	if r.sealHook != nil {
		t.onSeal = r.sealHook // t not yet published; no lock needed
	}
	// Start the clock while still holding the lock: a concurrent Delete
	// can only observe the tenant after it is published, so its Stop
	// always lands after (never between) the start.
	t.Start()
	r.tenants[name] = t
	r.mu.Unlock()
	return t, nil
}

// CreateSpec builds, registers and starts a tenant directly from a task
// spec, honouring its Serve section.
func (r *Registry) CreateSpec(name string, sp core.Spec) (*Tenant, error) {
	cfg, err := ConfigFromSpec(sp)
	if err != nil {
		return nil, err
	}
	return r.Create(name, cfg)
}

// Get returns the named tenant.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	t, ok := r.tenants[name]
	r.mu.RUnlock()
	return t, ok
}

// Delete unregisters the named tenant and stops its epoch clock. It
// reports whether the tenant existed. The deletion is WAL-logged best
// effort: if the store is down the tenant still disappears from this
// process but reappears on recovery.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	t, ok := r.tenants[name]
	delete(r.tenants, name)
	if ok && r.st != nil {
		_, _ = r.st.AppendTenantDelete(name)
	}
	r.mu.Unlock()
	if ok {
		t.Stop()
		dropTenantMetrics(name)
	}
	return ok
}

// List returns all tenants sorted by name.
func (r *Registry) List() []*Tenant {
	r.mu.RLock()
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}

// Close stops the snapshot loop and every tenant's epoch clock, then —
// for a durable registry — drains one final snapshot so a clean shutdown
// restarts from a snapshot instead of a long WAL replay. The registry
// remains usable; Close exists for collector shutdown. The store itself
// stays open (its lifetime belongs to whoever opened it).
func (r *Registry) Close() {
	r.snapCtl.Lock()
	stop, done := r.stopSnap, r.snapDone
	r.stopSnap, r.snapDone = nil, nil
	r.snapCtl.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	for _, t := range r.List() {
		t.Stop()
	}
	if r.st != nil {
		_ = r.Snapshot()
	}
}
