package defense

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

// Every registered name constructs and estimates; the wrappers agree with
// the underlying functions.
func TestRegistryNames(t *testing.T) {
	r := rng.New(1)
	reports := make([]float64, 500)
	for i := range reports {
		reports[i] = rng.Uniform(r, -1, 1)
	}
	for _, name := range Names() {
		d, err := New(Spec{Name: name})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("Name() = %q, want %q", d.Name(), name)
		}
		m, err := d.Estimate(rng.New(2), reports, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(m) || m < -1 || m > 1 {
			t.Fatalf("%s estimated %v", name, m)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New(Spec{Name: "magic"}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown defense: %v", err)
	}
	if _, err := New(Spec{Name: "trimming", Frac: 2}); err == nil {
		t.Fatal("bad trimming fraction accepted")
	}
}

// The wrappers must match the direct function calls exactly.
func TestRegistryMatchesFunctions(t *testing.T) {
	r := rng.New(3)
	reports := make([]float64, 400)
	for i := range reports {
		reports[i] = rng.Uniform(r, -1, 1)
	}
	ostrich, _ := New(Spec{Name: "ostrich"})
	if m, _ := ostrich.Estimate(nil, reports, false); m != Ostrich(reports) {
		t.Fatal("ostrich wrapper diverges")
	}
	trim, _ := New(Spec{Name: "trimming", Frac: 0.3})
	if m, _ := trim.Estimate(nil, reports, true); m != Trimming(reports, 0.3, true) {
		t.Fatal("trimming wrapper diverges (right)")
	}
	if m, _ := trim.Estimate(nil, reports, false); m != Trimming(reports, 0.3, false) {
		t.Fatal("trimming wrapper diverges (left)")
	}
	box, _ := New(Spec{Name: "boxplot"})
	if m, _ := box.Estimate(nil, reports, true); m != Boxplot(reports, 1.5) {
		t.Fatal("boxplot wrapper diverges")
	}
}
