package defense

import (
	"testing"

	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
)

// Error- and edge-path coverage for the defenses.

func TestKMeansDefenseClusterError(t *testing.T) {
	// Four identical reports: clustering still works (duplicated
	// centroids), the defense must not error.
	d := &KMeansDefense{Subsets: 8, Rate: 0.5}
	if _, err := d.Estimate(rng.New(1), []float64{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestIForestDefenseFullContamination(t *testing.T) {
	// Contamination ≈ 1 keeps at least one report.
	r := rng.New(2)
	reports := make([]float64, 50)
	for i := range reports {
		reports[i] = rng.Uniform(r, 0, 1)
	}
	d := &IForestDefense{Trees: 10, SampleSize: 32, Contamination: 0.99}
	est, err := d.Estimate(rng.New(3), reports)
	if err != nil {
		t.Fatal(err)
	}
	if est < 0 || est > 1 {
		t.Fatalf("estimate %v out of range", est)
	}
}

func TestEMFKMeansSamplePointsEmpty(t *testing.T) {
	mech := pm.MustNew(1)
	m, err := emf.BuildNumeric(mech, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	d := &EMFKMeans{Matrix: m}
	if pts := d.samplePoints(rng.New(4), make([]float64, 4)); pts != nil {
		t.Fatalf("zero-mass histogram sampled %d points", len(pts))
	}
}

func TestEMFKMeansCustomThresholdAndSamples(t *testing.T) {
	r := rng.New(5)
	mech := pm.MustNew(1)
	const n = 8000
	reports := make([]float64, n)
	for i := range reports {
		reports[i] = mech.Perturb(r, rng.Uniform(r, -0.5, 0.5))
	}
	din, dp := emf.BucketCounts(n, mech.C())
	m, err := emf.BuildNumeric(mech, din, dp)
	if err != nil {
		t.Fatal(err)
	}
	d := &EMFKMeans{Matrix: m, GammaThreshold: 0.5, SamplePoints: 500}
	est, err := d.Estimate(rng.New(6), reports)
	if err != nil {
		t.Fatal(err)
	}
	if est < -1 || est > 1 {
		t.Fatalf("estimate %v out of range", est)
	}
}

func TestBoxplotAllFiltered(t *testing.T) {
	// Two wildly separated points with k=0 keep only the quartile span;
	// the fallback mean path must engage when nothing survives.
	got := Boxplot([]float64{0, 0, 0, 0}, 0)
	if got != 0 {
		t.Fatalf("constant reports boxplot = %v", got)
	}
}

func TestTrimmingAllSame(t *testing.T) {
	if got := Trimming([]float64{3, 3, 3, 3}, 0.5, true); got != 3 {
		t.Fatalf("Trimming of constants = %v", got)
	}
}
