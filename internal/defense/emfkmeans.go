package defense

import (
	"errors"
	"math/rand/v2"

	"repro/internal/emf"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// EMFKMeans is the paper's integration of EMF with the k-means defense
// against input manipulation attacks (Fig. 9(b)): direct poison filtering
// cannot see IMA reports (they are honestly perturbed), so instead
//
//  1. EMF probes γ̂; a small γ̂ signals an evading (input-manipulating)
//     adversary rather than a direct one,
//  2. EMF* with γ = 0 deconvolves the reports into an input-distribution
//     estimate x̂ (Eq. 6 with γ̂ = 0),
//  3. 2-means over the reconstructed input histogram separates the
//     point mass the attackers injected at g from the genuine input
//     distribution; the larger cluster's mass yields the mean.
type EMFKMeans struct {
	// Matrix is the EMF transform matrix for the collection's mechanism
	// and bucketing.
	Matrix *emf.Matrix
	// GammaThreshold below which the adversary is treated as evading and
	// the k-means separation stage runs (default 0.1).
	GammaThreshold float64
	// EMF iteration controls.
	Config emf.Config
	// SamplePoints controls how many points are drawn from x̂ for the
	// clustering stage (default 4000).
	SamplePoints int
}

// Estimate runs the integrated defense on raw reports.
func (d *EMFKMeans) Estimate(r *rand.Rand, reports []float64) (float64, error) {
	if d.Matrix == nil {
		return 0, errors.New("defense: EMFKMeans requires a transform matrix")
	}
	counts := d.Matrix.Counts(reports)
	// Stage 1: probe γ̂ with the poison components in place.
	probe, err := emf.ProbeSide(d.Matrix, counts, 0, d.Config)
	if err != nil {
		return 0, err
	}
	threshold := d.GammaThreshold
	if threshold <= 0 {
		threshold = 0.1
	}
	if probe.Chosen().Gamma() >= threshold {
		// Direct attack: remove the probed poison mass as usual.
		res := probe.Chosen()
		gamma := res.Gamma()
		poisonMean := emf.PoisonMean(d.Matrix, res)
		n := float64(len(reports))
		mHat := gamma * n
		return (stats.Sum(reports) - mHat*poisonMean) / (n - mHat), nil
	}
	// Stage 2: deconvolve inputs assuming no direct poison, seeded from
	// the probe's chosen fit (same counts, same matrix — the probe already
	// did most of the work).
	cfg := d.Config
	cfg.Init = probe.Chosen()
	res, err := emf.RunConstrained(d.Matrix, counts, nil, 0, cfg)
	if err != nil {
		return 0, err
	}
	// Stage 3: cluster the reconstructed input distribution.
	points := d.samplePoints(r, res.X)
	if len(points) < 4 {
		return stats.Mean(reports), nil
	}
	km, err := kmeans.Cluster(r, points, 2, 0)
	if err != nil {
		return 0, err
	}
	largest := km.Largest()
	var sum float64
	var n int
	for i, p := range points {
		if km.Assign[i] == largest {
			sum += p
			n++
		}
	}
	if n == 0 {
		return stats.Mean(reports), nil
	}
	return sum / float64(n), nil
}

// samplePoints draws representative input values from the reconstructed
// histogram x̂, jittered uniformly within each bucket.
func (d *EMFKMeans) samplePoints(r *rand.Rand, x []float64) []float64 {
	total := stats.Sum(x)
	if total == 0 {
		return nil
	}
	nPts := d.SamplePoints
	if nPts <= 0 {
		nPts = 4000
	}
	w := d.Matrix.InWidth()
	points := make([]float64, 0, nPts)
	for k, mass := range x {
		cnt := int(mass/total*float64(nPts) + 0.5)
		center := d.Matrix.InCenter(k)
		for i := 0; i < cnt; i++ {
			points = append(points, center+(r.Float64()-0.5)*w)
		}
	}
	return points
}
