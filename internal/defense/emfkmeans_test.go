package defense

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
)

func TestEMFKMeansRequiresMatrix(t *testing.T) {
	d := &EMFKMeans{}
	if _, err := d.Estimate(rng.New(1), []float64{1, 2, 3}); err == nil {
		t.Fatal("missing matrix accepted")
	}
}

func TestEMFKMeansAgainstIMA(t *testing.T) {
	r := rng.New(2)
	mech := pm.MustNew(1)
	env := attack.EnvFor(mech, 0)
	const n = 40000
	const gamma = 0.25
	nByz := int(gamma * n)
	// Normal inputs concentrate near +0.5; attackers inject g = −1 through
	// honest perturbation, dragging the naive mean down.
	var reports []float64
	var trueSum float64
	for i := 0; i < n-nByz; i++ {
		v := rng.TruncNormal(r, 0.5, 0.15, -1, 1)
		trueSum += v
		reports = append(reports, mech.Perturb(r, v))
	}
	adv := &attack.IMA{G: -1}
	reports = append(reports, adv.Poison(r, env, nByz)...)
	trueMean := trueSum / float64(n-nByz)

	d_, dp := emf.BucketCounts(n, mech.C())
	matrix, err := emf.BuildNumeric(mech, d_, dp)
	if err != nil {
		t.Fatal(err)
	}
	def := &EMFKMeans{Matrix: matrix}
	est, err := def.Estimate(rng.New(3), reports)
	if err != nil {
		t.Fatal(err)
	}
	naive := Ostrich(reports)
	if math.Abs(est-trueMean) >= math.Abs(naive-trueMean) {
		t.Fatalf("EMF+kmeans (%v) should beat naive (%v) vs truth %v", est, naive, trueMean)
	}
}

func TestEMFKMeansDirectAttackPath(t *testing.T) {
	// A blatant direct attack (large γ̂) takes the poison-subtraction
	// branch instead of the deconvolution branch.
	r := rng.New(4)
	mech := pm.MustNew(0.25)
	env := attack.EnvFor(mech, 0)
	const n = 30000
	var reports []float64
	var trueSum float64
	for i := 0; i < n*3/4; i++ {
		v := rng.Uniform(r, -0.8, 0)
		trueSum += v
		reports = append(reports, mech.Perturb(r, v))
	}
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	reports = append(reports, adv.Poison(r, env, n/4)...)
	trueMean := trueSum / float64(n*3/4)

	d_, dp := emf.BucketCounts(n, mech.C())
	matrix, err := emf.BuildNumeric(mech, d_, dp)
	if err != nil {
		t.Fatal(err)
	}
	def := &EMFKMeans{Matrix: matrix}
	est, err := def.Estimate(rng.New(5), reports)
	if err != nil {
		t.Fatal(err)
	}
	naive := Ostrich(reports)
	if math.Abs(est-trueMean) >= math.Abs(naive-trueMean) {
		t.Fatalf("direct path (%v) should beat naive (%v) vs truth %v", est, naive, trueMean)
	}
}
