package defense

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stats"
)

// poisonedCollection builds a PM collection with γ=0.25 poison uniform on
// [C/2, C]; normal values uniform on [-0.8, 0].
func poisonedCollection(seed uint64, n int) (reports []float64, trueMean float64) {
	r := rng.New(seed)
	mech := pm.MustNew(1)
	env := attack.EnvFor(mech, 0)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	nByz := n / 4
	var sum float64
	for i := 0; i < n-nByz; i++ {
		v := rng.Uniform(r, -0.8, 0)
		sum += v
		reports = append(reports, mech.Perturb(r, v))
	}
	reports = append(reports, adv.Poison(r, env, nByz)...)
	return reports, sum / float64(n-nByz)
}

func TestOstrichBiasedUnderAttack(t *testing.T) {
	reports, trueMean := poisonedCollection(1, 20000)
	est := Ostrich(reports)
	if est <= trueMean+0.2 {
		t.Fatalf("Ostrich should be dragged upward: est %v vs true %v", est, trueMean)
	}
}

func TestOstrichUnbiasedWithoutAttack(t *testing.T) {
	r := rng.New(2)
	mech := pm.MustNew(1)
	var reports []float64
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := rng.Uniform(r, -0.5, 0.5)
		sum += v
		reports = append(reports, mech.Perturb(r, v))
	}
	if got, want := Ostrich(reports), sum/n; math.Abs(got-want) > 0.02 {
		t.Fatalf("Ostrich = %v, want %v", got, want)
	}
}

func TestTrimmingRemovesPoisonButOverkills(t *testing.T) {
	// §I: trimming removes the upward poison bias but also prunes normal
	// tail values, leaving a downward bias — it overshoots past the truth.
	reports, trueMean := poisonedCollection(3, 20000)
	ostrich := Ostrich(reports)
	trimmed := Trimming(reports, 0.5, true)
	if trimmed >= ostrich {
		t.Fatalf("trimming should remove upward poison: %v vs %v", trimmed, ostrich)
	}
	if trimmed >= trueMean {
		t.Fatalf("trimming should overkill below the truth: %v vs %v", trimmed, trueMean)
	}
}

func TestTrimmingEdgeCases(t *testing.T) {
	if got := Trimming(nil, 0.5, true); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := Trimming([]float64{1, 2}, 0, true); got != 1.5 {
		t.Fatalf("frac=0 = %v", got)
	}
	if got := Trimming([]float64{1, 2}, 1, true); got != 0 {
		t.Fatalf("frac=1 = %v", got)
	}
	// Left-side trimming removes the smallest values.
	got := Trimming([]float64{-10, 1, 2, 3}, 0.25, false)
	if got != 2 {
		t.Fatalf("left trim = %v, want 2", got)
	}
}

func TestTrimmingBiasWithoutAttack(t *testing.T) {
	// Trimming overkills normal tail values: on a clean symmetric
	// collection trimming half the data shifts the estimate below truth.
	r := rng.New(4)
	mech := pm.MustNew(1)
	var reports []float64
	const n = 50000
	for i := 0; i < n; i++ {
		reports = append(reports, mech.Perturb(r, rng.Uniform(r, -0.5, 0.5)))
	}
	trimmed := Trimming(reports, 0.5, true)
	if trimmed > -0.1 {
		t.Fatalf("expected strong downward bias, got %v", trimmed)
	}
}

func TestKMeansDefenseSeparatesBimodalSubsets(t *testing.T) {
	// With subsets small enough that each holds one report, subset means
	// reproduce the report distribution and 2-means isolates the poison
	// clump; the larger cluster's centroid recovers the normal mean.
	r := rng.New(5)
	var reports []float64
	for i := 0; i < 1400; i++ {
		reports = append(reports, rng.Normal(r, 0, 0.1))
	}
	for i := 0; i < 600; i++ {
		reports = append(reports, rng.Normal(r, 10, 0.1))
	}
	d := &KMeansDefense{Subsets: 2000, Rate: 1e-9} // size clamps to 1
	est, err := d.Estimate(rng.New(6), reports)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est) > 0.3 {
		t.Fatalf("k-means defense = %v, want ~0", est)
	}
}

func TestKMeansDefenseUniformContaminationStaysNearGlobal(t *testing.T) {
	// When every subset carries the same poison fraction (large subsets),
	// subset means are unimodal and the defense cannot separate the
	// attack — exactly why Fig. 9(a) shows DAP far ahead of it.
	reports, _ := poisonedCollection(5, 20000)
	d := &KMeansDefense{Subsets: 400, Rate: 0.1}
	est, err := d.Estimate(rng.New(6), reports)
	if err != nil {
		t.Fatal(err)
	}
	ostrich := Ostrich(reports)
	if math.Abs(est-ostrich) > 0.2 {
		t.Fatalf("uniformly contaminated subsets should track the global mean: %v vs %v", est, ostrich)
	}
}

func TestKMeansDefenseValidation(t *testing.T) {
	d := &KMeansDefense{Subsets: 10, Rate: 0.5}
	if _, err := d.Estimate(rng.New(1), []float64{1, 2}); err == nil {
		t.Fatal("too few reports accepted")
	}
}

func TestKMeansDefenseDefaults(t *testing.T) {
	reports, _ := poisonedCollection(7, 2000)
	d := &KMeansDefense{Rate: 0.1} // Subsets defaulted
	if _, err := d.Estimate(rng.New(8), reports); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplotFiltersOutliers(t *testing.T) {
	reports := []float64{1, 1.1, 0.9, 1.05, 0.95, 100}
	got := Boxplot(reports, 1.5)
	if math.Abs(got-1) > 0.1 {
		t.Fatalf("Boxplot = %v, want ~1", got)
	}
	if got := Boxplot(nil, 1.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestBoxplotDegenerateKeepsMean(t *testing.T) {
	// Negative k empties the interval; fall back to the plain mean.
	reports := []float64{1, 2, 3}
	if got := Boxplot(reports, -10); got != 2 {
		t.Fatalf("fallback = %v", got)
	}
}

func TestIForestDefenseRemovesScatteredPoison(t *testing.T) {
	// Scattered far poison isolates in few splits and scores anomalous.
	r := rng.New(9)
	var reports []float64
	for i := 0; i < 950; i++ {
		reports = append(reports, rng.Normal(r, 0, 0.3))
	}
	for i := 0; i < 50; i++ {
		reports = append(reports, rng.Uniform(r, 10, 100))
	}
	d := &IForestDefense{Trees: 100, SampleSize: 256, Contamination: 0.06}
	est, err := d.Estimate(rng.New(10), reports)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est) > 0.3 {
		t.Fatalf("iforest estimate %v, want ~0", est)
	}
	if math.Abs(stats.Mean(reports)) < 1 {
		t.Fatal("test setup broken: raw mean should be dragged")
	}
}

func TestIForestDefenseValidation(t *testing.T) {
	d := &IForestDefense{}
	if _, err := d.Estimate(rng.New(1), []float64{1}); err == nil {
		t.Fatal("single report accepted")
	}
}
