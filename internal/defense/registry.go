package defense

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
)

// ErrUnknown is returned by New for defense names outside Names().
var ErrUnknown = errors.New("defense: unknown defense")

// Defense is the single interface every comparator defense implements:
// given the raw perturbed reports of a single-group PM collection it
// produces a mean estimate. poisonedRight tells side-sensitive defenses
// (trimming) which tail the attack occupies; the others ignore it.
// Randomized defenses (kmeans, iforest) draw from r; deterministic ones
// ignore it.
type Defense interface {
	// Name returns the canonical registry name.
	Name() string
	// Estimate runs the defense over one collection's reports.
	Estimate(r *rand.Rand, reports []float64, poisonedRight bool) (float64, error)
}

// Spec parameterizes a defense selected by name — the JSON shape embedded
// in the task spec (core.Spec) under "defense". Zero values select each
// defense's documented default.
type Spec struct {
	// Name selects the defense: ostrich, trimming, kmeans, boxplot,
	// iforest.
	Name string `json:"name"`
	// Frac is trimming's removed fraction (default 0.5, the paper's
	// setting).
	Frac float64 `json:"frac,omitempty"`
	// Whisker is boxplot's IQR multiplier k (default 1.5, the classical
	// rule).
	Whisker float64 `json:"whisker,omitempty"`
	// Subsets and Rate configure the k-means subset defense (defaults 500
	// and 0.1).
	Subsets int     `json:"subsets,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	// Trees, SampleSize and Contamination configure the isolation-forest
	// filter (defaults per iforest.Options; contamination default 0.25).
	Trees         int     `json:"trees,omitempty"`
	SampleSize    int     `json:"sample_size,omitempty"`
	Contamination float64 `json:"contamination,omitempty"`
	// Side is the assumed poisoned side for side-sensitive defenses:
	// "right" (the default) or "left".
	Side string `json:"side,omitempty"`
}

// Names lists the registered defense names in sorted order.
func Names() []string {
	names := []string{"ostrich", "trimming", "kmeans", "boxplot", "iforest"}
	sort.Strings(names)
	return names
}

// New builds the named defense from sp. Unknown names return an error
// wrapping ErrUnknown, so spec validation can reject them uniformly.
func New(sp Spec) (Defense, error) {
	switch strings.ToLower(sp.Name) {
	case "ostrich":
		return ostrichDefense{}, nil
	case "trimming", "trim":
		frac := sp.Frac
		if frac == 0 {
			frac = 0.5
		}
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("defense: trimming fraction %g outside [0,1)", frac)
		}
		return trimmingDefense{frac: frac}, nil
	case "kmeans", "k-means":
		return &kmeansDefense{KMeansDefense{Subsets: sp.Subsets, Rate: defaultF(sp.Rate, 0.1)}}, nil
	case "boxplot":
		return boxplotDefense{k: defaultF(sp.Whisker, 1.5)}, nil
	case "iforest", "isolation-forest":
		return &iforestDefense{IForestDefense{
			Trees:         sp.Trees,
			SampleSize:    sp.SampleSize,
			Contamination: defaultF(sp.Contamination, 0.25),
		}}, nil
	}
	return nil, fmt.Errorf("%w %q (known: %s)", ErrUnknown, sp.Name, strings.Join(Names(), ", "))
}

func defaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

type ostrichDefense struct{}

func (ostrichDefense) Name() string { return "ostrich" }
func (ostrichDefense) Estimate(_ *rand.Rand, reports []float64, _ bool) (float64, error) {
	return Ostrich(reports), nil
}

type trimmingDefense struct{ frac float64 }

func (trimmingDefense) Name() string { return "trimming" }
func (d trimmingDefense) Estimate(_ *rand.Rand, reports []float64, poisonedRight bool) (float64, error) {
	return Trimming(reports, d.frac, poisonedRight), nil
}

type boxplotDefense struct{ k float64 }

func (boxplotDefense) Name() string { return "boxplot" }
func (d boxplotDefense) Estimate(_ *rand.Rand, reports []float64, _ bool) (float64, error) {
	return Boxplot(reports, d.k), nil
}

type kmeansDefense struct{ KMeansDefense }

func (*kmeansDefense) Name() string { return "kmeans" }
func (d *kmeansDefense) Estimate(r *rand.Rand, reports []float64, _ bool) (float64, error) {
	return d.KMeansDefense.Estimate(r, reports)
}

type iforestDefense struct{ IForestDefense }

func (*iforestDefense) Name() string { return "iforest" }
func (d *iforestDefense) Estimate(r *rand.Rand, reports []float64, _ bool) (float64, error) {
	return d.IForestDefense.Estimate(r, reports)
}
