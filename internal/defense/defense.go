// Package defense implements the comparator defenses of the paper's
// evaluation: Ostrich (§VI-C), Trimming (§I, §VI-C), the k-means subset
// defense of [38] with its EMF integration (Fig. 9(a)(b)), and the
// boxplot [56] and isolation-forest [15][41] outlier filters mentioned in
// §III-A.
//
// Each defense consumes the raw perturbed reports of a single-group PM
// collection (budget ε) and produces a mean estimate.
package defense

import (
	"errors"
	"math/rand/v2"
	"sort"

	"repro/internal/iforest"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// Ostrich averages every report, ignoring the possibility of Byzantine
// users (the paper's head-in-the-sand baseline). With PM the report mean
// is an unbiased estimator of the input mean when no attacker exists.
func Ostrich(reports []float64) float64 {
	return stats.Mean(reports)
}

// Trimming removes the top frac of the reports (the bottom frac when the
// poisoned side is left) and averages the rest — the robust-statistics
// baseline whose limitations §I describes. The paper's experiments trim
// frac = 0.5 from the poisoned side.
func Trimming(reports []float64, frac float64, poisonedRight bool) float64 {
	if len(reports) == 0 {
		return 0
	}
	if frac <= 0 {
		return stats.Mean(reports)
	}
	if frac >= 1 {
		return 0
	}
	s := make([]float64, len(reports))
	copy(s, reports)
	sort.Float64s(s)
	cut := int(float64(len(s)) * frac)
	if poisonedRight {
		s = s[:len(s)-cut]
	} else {
		s = s[cut:]
	}
	return stats.Mean(s)
}

// KMeansDefense is the subset-sampling defense of [38]: it draws Subsets
// random subsets of Rate·n reports, computes each subset's mean, clusters
// the subset means into two groups with 1-D k-means, and returns the
// centroid of the larger cluster (poisoned subsets gravitate to the
// smaller, displaced cluster).
type KMeansDefense struct {
	// Subsets is the number of sampled subsets (the paper uses 10⁶; the
	// defense is already stable from a few hundred).
	Subsets int
	// Rate is the sampling rate β ∈ (0,1].
	Rate float64
}

// Estimate runs the defense.
func (d *KMeansDefense) Estimate(r *rand.Rand, reports []float64) (float64, error) {
	if len(reports) < 4 {
		return 0, errors.New("defense: too few reports for k-means defense")
	}
	subsets := d.Subsets
	if subsets <= 0 {
		subsets = 500
	}
	size := int(d.Rate * float64(len(reports)))
	if size < 1 {
		size = 1
	}
	means := make([]float64, subsets)
	// One generator output feeds two index draws: with n < 2³², the
	// multiply-shift (u32·n)>>32 maps a 32-bit half uniformly onto [0,n)
	// with bias below n/2³² ≈ 10⁻⁵ — orders of magnitude under the
	// Monte-Carlo noise of the subset means — and halves the generator
	// traffic that dominates this comparator's runtime (Subsets·Rate·N
	// draws per estimate).
	n := uint64(len(reports))
	for s := range means {
		var sum float64
		i := 0
		for ; i+2 <= size; i += 2 {
			u := r.Uint64()
			sum += reports[(u>>32)*n>>32]
			sum += reports[(u&0xffffffff)*n>>32]
		}
		if i < size {
			sum += reports[(r.Uint64()>>32)*n>>32]
		}
		means[s] = sum / float64(size)
	}
	res, err := kmeans.Cluster(r, means, 2, 0)
	if err != nil {
		return 0, err
	}
	return res.Centroids[res.Largest()], nil
}

// Boxplot filters reports outside [Q1 − k·IQR, Q3 + k·IQR] (k = 1.5 for
// the classical rule) and averages the survivors.
func Boxplot(reports []float64, k float64) float64 {
	if len(reports) == 0 {
		return 0
	}
	s := make([]float64, len(reports))
	copy(s, reports)
	sort.Float64s(s)
	q1 := stats.QuantileSorted(s, 0.25)
	q3 := stats.QuantileSorted(s, 0.75)
	iqr := q3 - q1
	lo, hi := q1-k*iqr, q3+k*iqr
	var sum float64
	var n int
	for _, v := range s {
		if v >= lo && v <= hi {
			sum += v
			n++
		}
	}
	if n == 0 {
		return stats.Mean(s)
	}
	return sum / float64(n)
}

// IForestDefense removes the Contamination fraction of reports with the
// highest isolation-forest anomaly scores and averages the rest.
type IForestDefense struct {
	Trees         int
	SampleSize    int
	Contamination float64
}

// Estimate runs the defense.
func (d *IForestDefense) Estimate(r *rand.Rand, reports []float64) (float64, error) {
	f, err := iforest.Build(r, reports, iforest.Options{Trees: d.Trees, SampleSize: d.SampleSize})
	if err != nil {
		return 0, err
	}
	scores := f.Scores(reports)
	idx := make([]int, len(reports))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	keep := len(reports) - int(d.Contamination*float64(len(reports)))
	if keep < 1 {
		keep = 1
	}
	var sum float64
	for _, i := range idx[:keep] {
		sum += reports[i]
	}
	return sum / float64(keep), nil
}
