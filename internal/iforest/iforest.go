// Package iforest implements a one-dimensional isolation forest (Liu,
// Ting, Zhou 2008), one of the outlier-detection baselines the paper
// mentions as composable with DAP (§III-A).
//
// Anomalies are isolated by random axis splits in fewer steps than normal
// points; the anomaly score is 2^(−E[h(x)]/c(n)) where h is the path
// length and c(n) the average unsuccessful-search path of a BST.
package iforest

import (
	"errors"
	"math"
	"math/rand/v2"
)

type node struct {
	split       float64
	left, right *node
	size        int // leaf population (external node)
}

// Forest is a trained isolation forest.
type Forest struct {
	trees      []*node
	sampleSize int
}

// Options configures training.
type Options struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// SampleSize is the per-tree subsample (default 256, capped at n).
	SampleSize int
}

// Build trains an isolation forest on 1-D data.
func Build(r *rand.Rand, data []float64, opts Options) (*Forest, error) {
	if len(data) < 2 {
		return nil, errors.New("iforest: need at least two points")
	}
	trees := opts.Trees
	if trees <= 0 {
		trees = 100
	}
	sample := opts.SampleSize
	if sample <= 0 {
		sample = 256
	}
	if sample > len(data) {
		sample = len(data)
	}
	maxDepth := int(math.Ceil(math.Log2(float64(sample)))) + 1
	f := &Forest{trees: make([]*node, trees), sampleSize: sample}
	buf := make([]float64, sample)
	for t := 0; t < trees; t++ {
		for i := range buf {
			buf[i] = data[r.IntN(len(data))]
		}
		sub := append([]float64(nil), buf...)
		f.trees[t] = grow(r, sub, 0, maxDepth)
	}
	return f, nil
}

func grow(r *rand.Rand, data []float64, depth, maxDepth int) *node {
	if len(data) <= 1 || depth >= maxDepth || allEqual(data) {
		return &node{size: len(data)}
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	split := lo + (hi-lo)*r.Float64()
	var left, right []float64
	for _, v := range data {
		if v < split {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{size: len(data)}
	}
	return &node{
		split: split,
		left:  grow(r, left, depth+1, maxDepth),
		right: grow(r, right, depth+1, maxDepth),
	}
}

func allEqual(data []float64) bool {
	for _, v := range data[1:] {
		if v != data[0] {
			return false
		}
	}
	return true
}

// pathLength walks x down a tree, adding the c(size) adjustment at
// external nodes as in the original paper.
func pathLength(n *node, x float64, depth float64) float64 {
	for n.left != nil {
		depth++
		if x < n.split {
			n = n.left
		} else {
			n = n.right
		}
	}
	return depth + c(float64(n.size))
}

// c is the average path length of an unsuccessful BST search over n nodes.
func c(n float64) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(n-1) + 0.5772156649015329 // harmonic approximation
	return 2*h - 2*(n-1)/n
}

// Score returns the anomaly score of x in (0, 1); values near 1 are
// anomalous, values below ~0.5 are normal.
func (f *Forest) Score(x float64) float64 {
	var total float64
	for _, t := range f.trees {
		total += pathLength(t, x, 0)
	}
	avg := total / float64(len(f.trees))
	return math.Pow(2, -avg/c(float64(f.sampleSize)))
}

// Scores returns anomaly scores for every point.
func (f *Forest) Scores(data []float64) []float64 {
	out := make([]float64, len(data))
	for i, x := range data {
		out[i] = f.Score(x)
	}
	return out
}
