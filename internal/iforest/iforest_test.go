package iforest

import (
	"testing"

	"repro/internal/rng"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(rng.New(1), []float64{1}, Options{}); err == nil {
		t.Fatal("single point accepted")
	}
}

func TestOutlierScoresHigher(t *testing.T) {
	r := rng.New(2)
	data := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		data = append(data, rng.Normal(r, 0, 1))
	}
	f, err := Build(r, data, Options{Trees: 100, SampleSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	inlier := f.Score(0)
	outlier := f.Score(15)
	if outlier <= inlier {
		t.Fatalf("outlier score %v not above inlier %v", outlier, inlier)
	}
	if outlier < 0.6 {
		t.Fatalf("extreme outlier score %v too low", outlier)
	}
	if inlier > 0.6 {
		t.Fatalf("inlier score %v too high", inlier)
	}
}

func TestScoresRange(t *testing.T) {
	r := rng.New(3)
	data := make([]float64, 500)
	for i := range data {
		data[i] = rng.Uniform(r, -1, 1)
	}
	f, err := Build(r, data, Options{Trees: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Scores(data) {
		if s <= 0 || s >= 1 {
			t.Fatalf("score %v outside (0,1)", s)
		}
	}
}

func TestIdenticalData(t *testing.T) {
	r := rng.New(4)
	data := make([]float64, 100)
	for i := range data {
		data[i] = 3
	}
	f, err := Build(r, data, Options{Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate but must not panic or return NaN.
	if s := f.Score(3); s <= 0 || s > 1 {
		t.Fatalf("score %v", s)
	}
}

func TestDefaults(t *testing.T) {
	r := rng.New(5)
	data := make([]float64, 100)
	for i := range data {
		data[i] = rng.Uniform(r, 0, 1)
	}
	f, err := Build(r, data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.trees) != 100 {
		t.Fatalf("default trees = %d", len(f.trees))
	}
	if f.sampleSize != 100 {
		t.Fatalf("sample size = %d, want capped at n", f.sampleSize)
	}
}
