// Package stats provides the summary statistics, histogram utilities and
// distribution distances used by the EMF estimators and the experiment
// harness.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs. It returns 0 for inputs
// with fewer than two elements.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MSE returns the mean squared error of estimates against a scalar truth.
func MSE(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	var s float64
	for _, e := range estimates {
		d := e - truth
		s += d * d
	}
	return s / float64(len(estimates))
}

// MSEVec returns the mean squared error between two equal-length vectors,
// averaged over components. It panics on length mismatch.
func MSEVec(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("stats: MSEVec length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	var s float64
	for i := range est {
		d := est[i] - truth[i]
		s += d * d
	}
	return s / float64(len(est))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for already-sorted input.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
