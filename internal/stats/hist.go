package stats

import "math"

// Hist is a fixed-width histogram over [Lo, Hi] with len(Counts) buckets.
type Hist struct {
	Lo, Hi float64
	Counts []float64
}

// NewHist builds an empty histogram with the given support and bucket count.
// It panics if bins < 1 or the support is empty.
func NewHist(lo, hi float64, bins int) *Hist {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram support must be non-empty")
	}
	return &Hist{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// Histogram counts values into bins over [lo, hi]; out-of-range values are
// clamped into the boundary buckets, matching how a collector discretizes a
// bounded perturbation domain.
func Histogram(values []float64, lo, hi float64, bins int) *Hist {
	h := NewHist(lo, hi, bins)
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// Add counts a single value.
func (h *Hist) Add(v float64) {
	h.Counts[h.Bucket(v)]++
}

// Bucket returns the bucket index for value v, clamping out-of-range values.
func (h *Hist) Bucket(v float64) int {
	bins := len(h.Counts)
	w := (h.Hi - h.Lo) / float64(bins)
	i := int(math.Floor((v - h.Lo) / w))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	return i
}

// Width returns the bucket width.
func (h *Hist) Width() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Center returns the midpoint value of bucket i.
func (h *Hist) Center(i int) float64 {
	w := h.Width()
	return h.Lo + (float64(i)+0.5)*w
}

// Centers returns all bucket midpoints.
func (h *Hist) Centers() []float64 {
	c := make([]float64, len(h.Counts))
	for i := range c {
		c[i] = h.Center(i)
	}
	return c
}

// Total returns the sum of counts.
func (h *Hist) Total() float64 {
	return Sum(h.Counts)
}

// Normalized returns the counts normalized to sum to one. A zero histogram
// normalizes to the uniform distribution.
func (h *Hist) Normalized() []float64 {
	return Normalize(h.Counts)
}

// Normalize scales a non-negative vector to sum to one; an all-zero vector
// becomes uniform.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	total := Sum(xs)
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / total
	}
	return out
}

// HistMean returns the probability-weighted mean of bucket centers for a
// (possibly unnormalized) histogram weight vector over the given centers.
func HistMean(weights, centers []float64) float64 {
	if len(weights) != len(centers) {
		panic("stats: HistMean length mismatch")
	}
	var num, den float64
	for i, w := range weights {
		num += w * centers[i]
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}
