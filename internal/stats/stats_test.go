package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Fatalf("Sum = %v, want 10", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance of nil = %v, want 0", got)
	}
}

func TestMSE(t *testing.T) {
	est := []float64{1, 3}
	if got := MSE(est, 2); !almostEq(got, 1, 1e-12) {
		t.Fatalf("MSE = %v, want 1", got)
	}
	if got := MSE(nil, 2); got != 0 {
		t.Fatalf("MSE(nil) = %v, want 0", got)
	}
}

func TestMSEVec(t *testing.T) {
	if got := MSEVec([]float64{1, 2}, []float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("MSEVec = %v, want 2", got)
	}
}

func TestMSEVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSEVec([]float64{1}, []float64{1, 2})
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if got := Quantile(xs, 0.125); !almostEq(got, 1.5, 1e-12) {
		t.Fatalf("q12.5 = %v, want 1.5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v", got)
	}
}

func TestMinMaxClamp(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
	if got := Clamp(5, 0, 3); got != 3 {
		t.Fatalf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Fatalf("Clamp low = %v", got)
	}
	if got := Clamp(1, 0, 3); got != 1 {
		t.Fatalf("Clamp mid = %v", got)
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestHistogramBasic(t *testing.T) {
	// Boundary values fall into the upper bucket: -0.5 → bucket 1, 0.5 → bucket 3.
	h := Histogram([]float64{-1, -0.5, 0, 0.5, 0.999}, -1, 1, 4)
	want := []float64{1, 1, 1, 2}
	for i := range want {
		if h.Counts[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %v", h.Total())
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := Histogram([]float64{-10, 10}, -1, 1, 4)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("out-of-range not clamped: %v", h.Counts)
	}
}

func TestHistCenters(t *testing.T) {
	h := NewHist(0, 1, 4)
	want := []float64{0.125, 0.375, 0.625, 0.875}
	for i, c := range h.Centers() {
		if !almostEq(c, want[i], 1e-12) {
			t.Fatalf("Centers = %v, want %v", h.Centers(), want)
		}
	}
	if !almostEq(h.Width(), 0.25, 1e-12) {
		t.Fatalf("Width = %v", h.Width())
	}
}

func TestNewHistPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHist(0, 1, 0) },
		func() { NewHist(1, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{1, 3})
	if !almostEq(got[0], 0.25, 1e-12) || !almostEq(got[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", got)
	}
	uni := Normalize([]float64{0, 0, 0, 0})
	for _, u := range uni {
		if !almostEq(u, 0.25, 1e-12) {
			t.Fatalf("zero vector should normalize uniform, got %v", uni)
		}
	}
}

func TestHistMean(t *testing.T) {
	w := []float64{1, 0, 1}
	c := []float64{0, 1, 2}
	if got := HistMean(w, c); !almostEq(got, 1, 1e-12) {
		t.Fatalf("HistMean = %v", got)
	}
	if got := HistMean([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Fatalf("HistMean zero weights = %v", got)
	}
}

func TestWasserstein1Basic(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	// Mass 1 moved 2 buckets of width 0.5 => distance 1.0
	if got := Wasserstein1(p, q, 0.5); !almostEq(got, 1, 1e-12) {
		t.Fatalf("W1 = %v, want 1", got)
	}
	if got := Wasserstein1(p, p, 0.5); got != 0 {
		t.Fatalf("W1 self = %v, want 0", got)
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if got := TotalVariation(p, q); !almostEq(got, 1, 1e-12) {
		t.Fatalf("TV = %v, want 1", got)
	}
}

// Property: W1 is symmetric and non-negative.
func TestWassersteinSymmetryProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := []float64{float64(a) + 1, float64(b), float64(c)}
		q := []float64{float64(d), float64(a), float64(b) + 1}
		x := Wasserstein1(p, q, 0.1)
		y := Wasserstein1(q, p, 0.1)
		return x >= 0 && almostEq(x, y, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant.
func TestVarianceTranslationProperty(t *testing.T) {
	f := func(a, b, c int8, shift int8) bool {
		xs := []float64{float64(a), float64(b), float64(c)}
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = xs[i] + float64(shift)
		}
		return almostEq(Variance(xs), Variance(ys), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total equals input length.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		h := Histogram(vals, -1, 1, 8)
		return h.Total() == float64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
