package stats

import "math"

// Wasserstein1 computes the 1-Wasserstein (earth mover's) distance between
// two discrete distributions defined over the same equally spaced support
// with the given bucket width. Both inputs are normalized internally, so
// raw counts are accepted.
//
// For one-dimensional distributions on a common grid, W1 equals the L1
// distance between CDFs scaled by the grid spacing.
func Wasserstein1(p, q []float64, width float64) float64 {
	if len(p) != len(q) {
		panic("stats: Wasserstein1 length mismatch")
	}
	pn := Normalize(p)
	qn := Normalize(q)
	var cdfDiff, dist float64
	for i := range pn {
		cdfDiff += pn[i] - qn[i]
		dist += math.Abs(cdfDiff)
	}
	return dist * width
}

// TotalVariation computes the total-variation distance between two discrete
// distributions (normalizing raw counts first).
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: TotalVariation length mismatch")
	}
	pn := Normalize(p)
	qn := Normalize(q)
	var s float64
	for i := range pn {
		s += math.Abs(pn[i] - qn[i])
	}
	return s / 2
}
