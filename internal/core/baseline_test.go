package core

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestNewBaselineValidation(t *testing.T) {
	if _, err := NewBaseline(0, 1, SchemeEMF); err == nil {
		t.Fatal("zero alpha accepted")
	}
	if _, err := NewBaseline(0.5, 0.5, SchemeEMF); err == nil {
		t.Fatal("alpha >= beta accepted")
	}
	if _, err := NewBaseline(0.9, 0.1, SchemeEMF); err == nil {
		t.Fatal("alpha > beta accepted")
	}
}

func TestBaselineCollectShape(t *testing.T) {
	b, err := NewBaseline(0.125, 0.875, SchemeEMF)
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := uniformValues(1, 4000, -1, 1)
	col, err := b.Collect(rng.New(2), vals, attack.None{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Alpha) != 4000 || len(col.Beta) != 4000 {
		t.Fatalf("collection sizes %d/%d", len(col.Alpha), len(col.Beta))
	}
}

func TestBaselineDefends(t *testing.T) {
	vals, trueMean := uniformValues(3, 30000, -0.8, 0)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	b, err := NewBaseline(0.125, 0.875, SchemeEMFStar)
	if err != nil {
		t.Fatal(err)
	}
	est, err := b.Run(rng.New(4), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Ostrich on the β reports alone.
	col, err := b.Collect(rng.New(4), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ostrich := stats.Mean(col.Beta)
	if math.Abs(est.Mean-trueMean) >= math.Abs(ostrich-trueMean) {
		t.Fatalf("baseline (%v) should beat Ostrich (%v) vs truth %v", est.Mean, ostrich, trueMean)
	}
	if !est.PoisonedRight {
		t.Fatal("side probe failed")
	}
}

// The §V motivation: attackers who behave honestly on ε_α hide from the
// probe, so the gamed baseline reconstructs a much smaller γ̂ than the
// honest-threat baseline.
func TestBaselineGamedProbeDegrades(t *testing.T) {
	vals, _ := uniformValues(5, 30000, -0.8, 0)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	b, err := NewBaseline(0.125, 0.875, SchemeEMF)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := b.Collect(rng.New(6), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	gamed, err := b.GamedCollect(rng.New(6), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	estHonest, err := b.Estimate(honest)
	if err != nil {
		t.Fatal(err)
	}
	estGamed, err := b.Estimate(gamed)
	if err != nil {
		t.Fatal(err)
	}
	if estGamed.Gamma >= estHonest.Gamma {
		t.Fatalf("gamed γ̂ (%v) should fall below honest γ̂ (%v)", estGamed.Gamma, estHonest.Gamma)
	}
	if estGamed.Gamma > 0.12 {
		t.Fatalf("gamed γ̂ = %v, expected near zero (attack hidden)", estGamed.Gamma)
	}
}

func TestBaselineEstimateValidation(t *testing.T) {
	b, _ := NewBaseline(0.125, 0.875, SchemeEMF)
	if _, err := b.Estimate(nil); err == nil {
		t.Fatal("nil collection accepted")
	}
	if _, err := b.Estimate(&BaselineCollection{Alpha: []float64{1}}); err == nil {
		t.Fatal("empty beta accepted")
	}
}

func TestBaselineCEMFScheme(t *testing.T) {
	vals, trueMean := uniformValues(7, 20000, -0.8, 0)
	adv := attack.NewBBA(attack.RangeHighQuarter, attack.DistUniform)
	b, err := NewBaseline(0.125, 0.875, SchemeCEMFStar)
	if err != nil {
		t.Fatal(err)
	}
	est, err := b.Run(rng.New(8), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-trueMean) > 0.25 {
		t.Fatalf("CEMF* baseline estimate %v vs truth %v", est.Mean, trueMean)
	}
}
