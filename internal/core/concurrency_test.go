package core

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/attack"
	"repro/internal/rng"
)

func testValues(n int) []float64 {
	r := rng.New(42)
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Uniform(r, -0.9, 0.2)
	}
	return values
}

// TestEstimateDeterministicUnderConcurrency: the collector side fans the
// per-group EM fits out on goroutines; repeated Estimate calls over the
// same collection must be bit-identical.
func TestEstimateDeterministicUnderConcurrency(t *testing.T) {
	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeCEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	col, err := d.Collect(rng.New(5), testValues(6000), adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		again, err := d.Estimate(col)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("Estimate diverged on repeat %d:\n%+v\nvs\n%+v", rep, first, again)
		}
	}
}

// TestEstimateFreqDeterministicUnderConcurrency is the categorical analog.
func TestEstimateFreqDeterministicUnderConcurrency(t *testing.T) {
	d, err := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.25, K: 12, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	cats := make([]int, 5000)
	for i := range cats {
		cats[i] = r.IntN(12)
	}
	col, err := d.CollectFreq(rng.New(7), cats, []int{3}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.EstimateFreq(col)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		again, err := d.EstimateFreq(col)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("EstimateFreq diverged on repeat %d", rep)
		}
	}
}

// sentinelAdv reports a fixed poison value so tests can count Byzantine
// reports per group.
type sentinelAdv struct{ v float64 }

func (s sentinelAdv) Name() string { return "sentinel" }
func (s sentinelAdv) Poison(_ *rand.Rand, _ attack.Env, k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = s.v
	}
	return out
}

// TestCollectSpreadsByzantineAcrossGroups guards the single-shuffle
// Collect: the strided Byzantine slots must land ~γ in every group (the
// naive prefix split would concentrate them all in the first groups).
func TestCollectSpreadsByzantineAcrossGroups(t *testing.T) {
	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16})
	if err != nil {
		t.Fatal(err)
	}
	const gamma = 0.25
	col, err := d.Collect(rng.New(9), testValues(20000), sentinelAdv{v: 99}, gamma)
	if err != nil {
		t.Fatal(err)
	}
	for tdx, g := range d.Groups() {
		reports := col.Groups[tdx]
		poisoned := 0
		for _, v := range reports {
			if v == 99 {
				poisoned++
			}
		}
		frac := float64(poisoned) / float64(len(reports))
		if frac < gamma-0.05 || frac > gamma+0.05 {
			t.Fatalf("group %d (ε=%v): Byzantine fraction %v, want ≈%v", tdx, g.Eps, frac, gamma)
		}
	}
}

// TestSampleSubset checks uniform k-subset sampling basics.
func TestSampleSubset(t *testing.T) {
	if SampleSubset(rng.New(1), 100, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	set := SampleSubset(rng.New(1), 1000, 250)
	count := 0
	for i := 0; i < 1000; i++ {
		if set[i>>6]&(1<<(uint(i)&63)) != 0 {
			count++
		}
	}
	if count != 250 {
		t.Fatalf("subset size %d, want 250", count)
	}
}
