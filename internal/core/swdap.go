package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/emf"
	"repro/internal/ldp/sw"
	"repro/internal/stats"
)

// SWParams configures the Square Wave variant of DAP (§V-D): inputs live
// in [0,1], perturbation uses SW, reconstruction uses EMS (EM with
// smoothing), and the mean is read off the reconstructed input histogram
// rather than the report sum.
type SWParams struct {
	Eps  float64
	Eps0 float64
	// Scheme selects EMF, EMF* or CEMF* (each running EMS-style with the
	// smoothing step).
	Scheme Scheme
	// TrimFrac is the fraction removed from the poisoned side before the
	// pessimistic O′ estimation (§V-D prescribes 50%; 0 selects it).
	TrimFrac float64
	// SuppressFactor is CEMF*'s threshold factor (0 selects 0.5).
	SuppressFactor float64
	// EMFMaxIter caps EM iterations (0 selects the emf default).
	EMFMaxIter int
	// WeightMode selects the aggregation weights.
	WeightMode WeightMode
}

// SWDAP is the Square Wave instantiation of the protocol.
type SWDAP struct {
	p      SWParams
	groups []Group
	mechs  []*sw.Mechanism
}

// NewSWDAP validates parameters and precomputes the group layout.
func NewSWDAP(p SWParams) (*SWDAP, error) {
	if err := validateBudgets(p.Eps, p.Eps0); err != nil {
		return nil, err
	}
	h := groupCount(p.Eps, p.Eps0)
	d := &SWDAP{p: p, groups: make([]Group, h), mechs: make([]*sw.Mechanism, h)}
	for t := 0; t < h; t++ {
		eps := p.Eps / math.Pow(2, float64(t))
		mech, err := sw.New(eps)
		if err != nil {
			return nil, fmt.Errorf("core: sw group %d: %w", t, err)
		}
		d.groups[t] = Group{Index: t, Eps: eps, Reports: 1 << t}
		d.mechs[t] = mech
	}
	return d, nil
}

// H returns the group count.
func (d *SWDAP) H() int { return len(d.groups) }

// Groups returns the group layout.
func (d *SWDAP) Groups() []Group { return append([]Group(nil), d.groups...) }

// Mechanism returns group t's SW instance.
func (d *SWDAP) Mechanism(t int) *sw.Mechanism { return d.mechs[t] }

// Collect simulates the user side over values in [0,1].
func (d *SWDAP) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error) {
	n := len(values)
	if n < d.H() {
		return nil, badCollection("fewer users than groups")
	}
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("%w: gamma must lie in [0,1)", ErrDomain)
	}
	if adv == nil {
		adv = attack.None{}
	}
	nByz := int(math.Round(gamma * float64(n)))
	perm := r.Perm(n)
	isByz := make([]bool, n)
	for _, u := range perm[:nByz] {
		isByz[u] = true
	}
	assign := r.Perm(n)
	col := &Collection{Groups: make([][]float64, d.H()), ByzCount: nByz}
	h := d.H()
	for t := 0; t < h; t++ {
		lo, hi := t*n/h, (t+1)*n/h
		g := d.groups[t]
		mech := d.mechs[t]
		env := attack.EnvFor(mech, 0.5) // O anchored mid-domain for ranges
		env.Group = t
		reports := make([]float64, 0, (hi-lo)*g.Reports)
		for _, u := range assign[lo:hi] {
			if isByz[u] {
				reports = append(reports, adv.Poison(r, env, g.Reports)...)
			} else {
				for k := 0; k < g.Reports; k++ {
					reports = append(reports, mech.Perturb(r, values[u]))
				}
			}
		}
		col.Groups[t] = reports
	}
	return col, nil
}

// SWEstimate extends Estimate with the reconstructed input distribution.
type SWEstimate struct {
	Estimate
	// OPrime is the trimmed-EMS pessimistic mean used for side probing.
	OPrime float64
	// XHat is the aggregated normal-user input histogram (normalized),
	// used for the distribution-estimation experiments (Fig. 8(a)).
	XHat []float64
}

// Estimate runs the collector side over an SW collection.
func (d *SWDAP) Estimate(col *Collection) (*SWEstimate, error) {
	return d.EstimateWarm(col, nil)
}

// EstimateWarm is Estimate with the solver runs seeded from a previous
// estimate's fits (tolerance-equivalent to the cold run; see WarmState).
func (d *SWDAP) EstimateWarm(col *Collection, warm *WarmState) (*SWEstimate, error) {
	h := d.H()
	if col == nil || len(col.Groups) != h {
		return nil, badCollection("collection does not match group layout")
	}
	matrices := make([]*emf.Matrix, h)
	counts := make([][]float64, h)
	ns := make([]float64, h)
	for t := 0; t < h; t++ {
		if len(col.Groups[t]) == 0 {
			return nil, badCollection("group %d holds no reports", t)
		}
		c := d.mechs[t].OutputDomain().Width() // SW analogue of 2C/2
		din, dprime := emf.BucketCounts(len(col.Groups[t]), c)
		m, err := emf.BuildNumericCached(d.mechs[t], din, dprime)
		if err != nil {
			return nil, err
		}
		matrices[t] = m
		counts[t] = m.Counts(col.Groups[t])
		ns[t] = float64(len(col.Groups[t]))
	}

	// Pessimistic O′ via trimmed EMS on the smallest-budget group (§V-D).
	oPrime, oFit, err := d.pessimisticO(matrices[h-1], col.Groups[h-1], warm.oSeed())
	if err != nil {
		return nil, err
	}
	return d.estimateFromCounts(matrices, counts, ns, oPrime, oFit, warm)
}

// estimateFromCounts runs the SW collector stages over the per-group
// sufficient statistic with a precomputed pessimistic O′ (trimmed from raw
// reports by Estimate, from histogram mass by EstimateHist). oFit is the
// EMS fit that produced O′ (carried into the warm state and telemetry);
// warm optionally seeds every solver run.
func (d *SWDAP) estimateFromCounts(matrices []*emf.Matrix, counts [][]float64, ns []float64, oPrime float64, oFit *emf.Result, warm *WarmState) (*SWEstimate, error) {
	h := d.H()
	var diag emfDiag
	diag.observe(oFit)
	probe, err := emf.ProbeSideInit(matrices[h-1], counts[h-1], oPrime, d.cfg(h-1),
		warm.probeLeft(), warm.probeRight())
	if err != nil {
		return nil, err
	}
	diag.observe(probe.Left, probe.Right)
	side := probe.Side
	gammaGlobal := probe.Chosen().Gamma()

	est := &SWEstimate{
		Estimate: Estimate{
			PoisonedRight: side == emf.Right,
			Gamma:         gammaGlobal,
			GroupMeans:    make([]float64, h),
			GroupGammas:   make([]float64, h),
			NHat:          make([]float64, h),
		},
		OPrime: oPrime,
	}
	b := make([]float64, h)
	bases := make([]*emf.Result, h)
	finals := make([]*emf.Result, h)
	var xAgg []float64
	for t := 0; t < h; t++ {
		m := matrices[t]
		var poison []int
		if side == emf.Right {
			poison = m.PoisonRight(oPrime)
		} else {
			poison = m.PoisonLeft(oPrime)
		}
		cfg := d.cfg(t)
		wBase, wFinal := warm.base(t), warm.final(t)
		if t == h-1 {
			wBase = probe.Chosen()
			if wFinal == nil {
				wFinal = probe.Chosen()
			}
		}
		var res, base *emf.Result
		var gammaT float64
		switch d.p.Scheme {
		case SchemeEMFStar:
			// The unconstrained base fit is unused under EMF*; skip it.
			cfg.Init = wFinal
			if res, err = emf.RunConstrained(m, counts[t], poison, gammaGlobal, cfg); err != nil {
				return nil, err
			}
			gammaT = gammaGlobal
		case SchemeCEMFStar:
			factor := d.p.SuppressFactor
			if factor <= 0 {
				factor = 0.5
			}
			cfg.Init = wBase
			if base, err = emf.Run(m, counts[t], poison, cfg); err != nil {
				return nil, err
			}
			if res, err = emf.RunConcentrated(m, counts[t], base, gammaGlobal, factor, d.cfg(t)); err != nil {
				return nil, err
			}
			gammaT = res.Gamma()
		default:
			cfg.Init = wBase
			if base, err = emf.Run(m, counts[t], poison, cfg); err != nil {
				return nil, err
			}
			res = base
			gammaT = base.Gamma()
		}
		bases[t], finals[t] = base, res
		diag.observe(res)
		if base != nil && base != res {
			diag.observe(base)
		}
		// SW mean comes from the reconstructed input histogram.
		mean := stats.HistMean(res.X, m.InCenters())
		est.GroupMeans[t] = stats.Clamp(mean, 0, 1)
		est.GroupGammas[t] = gammaT
		nt := ns[t]
		mHat := gammaT * nt
		if mHat > 0.95*nt {
			mHat = 0.95 * nt
		}
		est.NHat[t] = (nt - mHat) * d.groups[t].Eps / d.p.Eps
		b[t] = est.NHat[t] * d.mechs[t].WorstCaseVar()
		// Aggregate the distribution estimate from the largest-budget group
		// histogram resolution by accumulating normalized x̂ weighted by n̂.
		xn := stats.Normalize(res.X)
		if xAgg == nil {
			xAgg = make([]float64, len(xn))
		}
		if len(xn) == len(xAgg) {
			for k := range xn {
				xAgg[k] += est.NHat[t] * xn[k]
			}
		}
	}
	w, err := OptimalWeights(b, est.NHat, d.p.WeightMode)
	if err != nil {
		return nil, err
	}
	est.Weights = w
	est.VarMin = MinVariance(b, est.NHat)
	est.Mean = Aggregate(est.GroupMeans, w)
	est.XHat = stats.Normalize(xAgg)
	diag.apply(&est.Estimate)
	est.Warm = &WarmState{probeL: probe.Left, probeR: probe.Right, oFit: oFit, bases: bases, finals: finals}
	return est, nil
}

// Run is Collect followed by Estimate.
func (d *SWDAP) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*SWEstimate, error) {
	col, err := d.Collect(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return d.Estimate(col)
}

// pessimisticO estimates O′ for SW by removing the top TrimFrac of the
// reports and running plain EMS on the rest (§V-D's analogue of
// Theorem 2). init optionally seeds the EMS fit; the fit is returned for
// the next estimate's warm state.
func (d *SWDAP) pessimisticO(m *emf.Matrix, reports []float64, init *emf.Result) (float64, *emf.Result, error) {
	frac := d.p.TrimFrac
	if frac <= 0 {
		frac = 0.5
	}
	trimmed := make([]float64, len(reports))
	copy(trimmed, reports)
	// Remove the largest frac of reports (pessimistic against a right-side
	// attack, mirroring Theorem 2's default orientation).
	mean := stats.Quantile(trimmed, 1-frac)
	kept := trimmed[:0]
	for _, v := range trimmed {
		if v <= mean {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		kept = trimmed
	}
	counts := m.Counts(kept)
	res, err := emf.RunConstrained(m, counts, nil, 0,
		emf.Config{Smooth: true, MaxIter: d.p.EMFMaxIter, Accelerate: true, Init: init})
	if err != nil {
		return 0, nil, err
	}
	return stats.Clamp(stats.HistMean(res.X, m.InCenters()), 0, 1), res, nil
}

func (d *SWDAP) cfg(t int) emf.Config {
	return emf.Config{Tol: emf.PaperTol(d.groups[t].Eps), MaxIter: d.p.EMFMaxIter, Smooth: true, Accelerate: true}
}

// SWSingle reconstructs the input distribution from one single-budget SW
// collection — the Fig. 8(a) distribution-estimation experiment. Scheme
// selects the poison handling; SchemeOstrich-like behaviour (plain EMS,
// poison ignored) is obtained with IgnorePoison.
type SWSingle struct {
	Eps float64
	// Scheme selects EMF, EMF* or CEMF*.
	Scheme Scheme
	// IgnorePoison runs plain EMS with no poison components (the Ostrich
	// distribution baseline).
	IgnorePoison bool
	// EMFMaxIter caps EM iterations (0 selects the emf default).
	EMFMaxIter int
}

// Reconstruct returns the normalized input histogram estimate and the
// bucket centers.
func (s *SWSingle) Reconstruct(reports []float64) (xhat, centers []float64, err error) {
	mech, err := sw.New(s.Eps)
	if err != nil {
		return nil, nil, err
	}
	din, dprime := emf.BucketCounts(len(reports), mech.OutputDomain().Width())
	m, err := emf.BuildNumericCached(mech, din, dprime)
	if err != nil {
		return nil, nil, err
	}
	counts := m.Counts(reports)
	cfg := emf.Config{Tol: emf.PaperTol(s.Eps), MaxIter: s.EMFMaxIter, Smooth: true, Accelerate: true}
	if s.IgnorePoison {
		res, err := emf.RunConstrained(m, counts, nil, 0, cfg)
		if err != nil {
			return nil, nil, err
		}
		return stats.Normalize(res.X), m.InCenters(), nil
	}
	probe, err := emf.ProbeSide(m, counts, 0.5, cfg)
	if err != nil {
		return nil, nil, err
	}
	side := probe.Side
	var poison []int
	if side == emf.Right {
		poison = m.PoisonRight(0.5)
	} else {
		poison = m.PoisonLeft(0.5)
	}
	res := probe.Chosen()
	switch s.Scheme {
	case SchemeEMFStar:
		cfg.Init = res
		res, err = emf.RunConstrained(m, counts, poison, res.Gamma(), cfg)
	case SchemeCEMFStar:
		res, err = emf.RunConcentrated(m, counts, res, res.Gamma(), 0.5, cfg)
	}
	if err != nil {
		return nil, nil, err
	}
	return stats.Normalize(res.X), m.InCenters(), nil
}
