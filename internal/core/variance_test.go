package core

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestVarianceEstimatorValidation(t *testing.T) {
	ve := &VarianceEstimator{Params: Params{Eps: 1, Eps0: 0.25}}
	if _, err := ve.Run(rng.New(1), []float64{1, 2}, nil, 0); err == nil {
		t.Fatal("too few users accepted")
	}
	bad := &VarianceEstimator{Params: Params{Eps: 0, Eps0: 1}}
	if _, err := bad.Run(rng.New(1), make([]float64, 100), nil, 0); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestVarianceEstimatorClean(t *testing.T) {
	vals, _ := uniformValues(1, 30000, -0.6, 0.6)
	trueVar := stats.Variance(vals)
	ve := &VarianceEstimator{Params: Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar}}
	est, err := ve.Run(rng.New(2), vals, attack.None{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Variance-trueVar) > 0.08 {
		t.Fatalf("variance %v, want ~%v", est.Variance, trueVar)
	}
	if est.Variance < 0 || est.SecondMoment < 0 || est.SecondMoment > 1 {
		t.Fatalf("invalid moments: %+v", est)
	}
}

func TestVarianceEstimatorUnderAttack(t *testing.T) {
	vals, _ := uniformValues(3, 30000, -0.6, 0.6)
	trueVar := stats.Variance(vals)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	ve := &VarianceEstimator{Params: Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar}}
	est, err := ve.Run(rng.New(4), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// The attack drags both moments; the defense must keep the variance
	// in the right ballpark where the naive estimate explodes.
	if math.Abs(est.Variance-trueVar) > 0.15 {
		t.Fatalf("defended variance %v, want ~%v", est.Variance, trueVar)
	}
	if est.MeanEst == nil || est.MomentEst == nil {
		t.Fatal("underlying estimates missing")
	}
}

func TestDAPAutoOPrime(t *testing.T) {
	vals, trueMean := uniformValues(5, 15000, -0.8, 0)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	d, err := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: SchemeEMFStar, AutoOPrime: true})
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.Run(rng.New(6), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2: with a right-side attack, O′ must sit at or below the
	// true mean so no poison values escape the analysis.
	if est.OPrime > trueMean+0.05 {
		t.Fatalf("O′ = %v above true mean %v", est.OPrime, trueMean)
	}
	if !est.PoisonedRight {
		t.Fatal("side probe failed under AutoOPrime")
	}
	if math.Abs(est.Mean-trueMean) > 0.2 {
		t.Fatalf("AutoOPrime estimate %v vs truth %v", est.Mean, trueMean)
	}
}

func TestDAPFixedOPrimeRecorded(t *testing.T) {
	vals, _ := uniformValues(7, 9000, -0.5, 0.5)
	d, err := NewDAP(Params{Eps: 1, Eps0: 0.25, OPrime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.Run(rng.New(8), vals, attack.None{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.OPrime != 0.1 {
		t.Fatalf("recorded O′ = %v, want 0.1", est.OPrime)
	}
}
