package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestNewFreqDAPValidation(t *testing.T) {
	if _, err := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.25, K: 1}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := NewFreqDAP(FreqParams{Eps: 0, Eps0: 0.25, K: 5}); err == nil {
		t.Fatal("bad budgets accepted")
	}
}

func TestFreqCollectValidation(t *testing.T) {
	d, _ := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.5, K: 15})
	cov := dataset.COVID19()
	cats := cov.Sample(rng.New(1), 1000)
	if _, err := d.CollectFreq(rng.New(2), cats, nil, 0.25); err == nil {
		t.Fatal("gamma>0 without poison categories accepted")
	}
	if _, err := d.CollectFreq(rng.New(2), cats, []int{99}, 0.25); err == nil {
		t.Fatal("out-of-range category accepted")
	}
	if _, err := d.CollectFreq(rng.New(2), []int{1}, []int{2}, 0); err == nil {
		t.Fatal("too few users accepted")
	}
}

func TestFreqDAPDefendsSingleCategory(t *testing.T) {
	cov := dataset.COVID19()
	cats := cov.Sample(rng.New(3), 30000)
	trueFreqs := cov.Freqs()
	for _, scheme := range Schemes() {
		d, err := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.25, K: 15, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		col, err := d.CollectFreq(rng.New(4), cats, []int{10}, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		est, err := d.EstimateFreq(col)
		if err != nil {
			t.Fatal(err)
		}
		ostrich, err := d.OstrichFreq(col)
		if err != nil {
			t.Fatal(err)
		}
		mseDAP := stats.MSEVec(est.Freqs, trueFreqs)
		mseOst := stats.MSEVec(ostrich, trueFreqs)
		if mseDAP >= mseOst {
			t.Fatalf("%v: DAP MSE %v should beat Ostrich %v", scheme, mseDAP, mseOst)
		}
		if math.Abs(stats.Sum(est.Freqs)-1) > 1e-9 {
			t.Fatalf("%v: frequencies sum to %v", scheme, stats.Sum(est.Freqs))
		}
	}
}

func TestFreqDAPMultiCategory(t *testing.T) {
	cov := dataset.COVID19()
	cats := cov.Sample(rng.New(5), 30000)
	trueFreqs := cov.Freqs()
	d, err := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.25, K: 15, Scheme: SchemeCEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	col, err := d.CollectFreq(rng.New(6), cats, []int{10, 11, 12}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.EstimateFreq(col)
	if err != nil {
		t.Fatal(err)
	}
	ostrich, err := d.OstrichFreq(col)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MSEVec(est.Freqs, trueFreqs) >= stats.MSEVec(ostrich, trueFreqs) {
		t.Fatal("multi-category DAP should beat Ostrich")
	}
}

func TestFreqDAPNoAttack(t *testing.T) {
	cov := dataset.COVID19()
	cats := cov.Sample(rng.New(7), 20000)
	trueFreqs := cov.Freqs()
	d, err := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.25, K: 15, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.RunFreq(rng.New(8), cats, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mse := stats.MSEVec(est.Freqs, trueFreqs); mse > 0.002 {
		t.Fatalf("clean frequency MSE %v too high", mse)
	}
}

func TestFreqEstimateValidation(t *testing.T) {
	d, _ := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.5, K: 5})
	if _, err := d.EstimateFreq(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := d.EstimateFreq(&FreqCollection{Counts: [][]float64{{1, 2}}}); err == nil {
		t.Fatal("wrong shape accepted")
	}
}
