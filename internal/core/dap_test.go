package core

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/rng"
	"repro/internal/stats"
)

func uniformValues(seed uint64, n int, lo, hi float64) ([]float64, float64) {
	r := rng.New(seed)
	vals := make([]float64, n)
	var sum float64
	for i := range vals {
		vals[i] = rng.Uniform(r, lo, hi)
		sum += vals[i]
	}
	return vals, sum / float64(n)
}

func TestNewDAPValidation(t *testing.T) {
	if _, err := NewDAP(Params{Eps: 0, Eps0: 1}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewDAP(Params{Eps: 1, Eps0: 0}); err == nil {
		t.Fatal("eps0=0 accepted")
	}
	if _, err := NewDAP(Params{Eps: 1, Eps0: 2}); err == nil {
		t.Fatal("eps0 > eps accepted")
	}
}

func TestDAPGroupLayout(t *testing.T) {
	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16})
	if err != nil {
		t.Fatal(err)
	}
	if d.H() != 5 {
		t.Fatalf("h = %d, want 5", d.H())
	}
	gs := d.Groups()
	for t2, g := range gs {
		wantEps := 1.0 / math.Pow(2, float64(t2))
		if math.Abs(g.Eps-wantEps) > 1e-12 {
			t.Fatalf("group %d eps = %v, want %v", t2, g.Eps, wantEps)
		}
		if g.Reports != 1<<t2 {
			t.Fatalf("group %d reports = %d, want %d", t2, g.Reports, 1<<t2)
		}
		// Per-user budget is preserved: reports · ε_t = ε.
		if math.Abs(float64(g.Reports)*g.Eps-1) > 1e-12 {
			t.Fatalf("group %d total budget %v, want 1", t2, float64(g.Reports)*g.Eps)
		}
	}
}

func TestDAPCollectShape(t *testing.T) {
	d, err := NewDAP(Params{Eps: 1, Eps0: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := uniformValues(1, 9000, -1, 1)
	col, err := d.Collect(rng.New(2), vals, attack.None{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Groups) != 3 {
		t.Fatalf("groups = %d", len(col.Groups))
	}
	for t2, g := range d.Groups() {
		want := 3000 * g.Reports
		if len(col.Groups[t2]) != want {
			t.Fatalf("group %d holds %d reports, want %d", t2, len(col.Groups[t2]), want)
		}
	}
	if col.ByzCount != 0 {
		t.Fatalf("byz count = %d", col.ByzCount)
	}
}

func TestDAPCollectValidation(t *testing.T) {
	d, _ := NewDAP(Params{Eps: 1, Eps0: 0.25})
	if _, err := d.Collect(rng.New(1), []float64{1}, nil, 0); err == nil {
		t.Fatal("too few users accepted")
	}
	vals, _ := uniformValues(1, 100, -1, 1)
	if _, err := d.Collect(rng.New(1), vals, nil, 1.5); err == nil {
		t.Fatal("gamma > 1 accepted")
	}
}

func TestDAPEstimateValidation(t *testing.T) {
	d, _ := NewDAP(Params{Eps: 1, Eps0: 0.25})
	if _, err := d.Estimate(nil); err == nil {
		t.Fatal("nil collection accepted")
	}
	if _, err := d.Estimate(&Collection{Groups: make([][]float64, 2)}); err == nil {
		t.Fatal("wrong group count accepted")
	}
	if _, err := d.Estimate(&Collection{Groups: make([][]float64, 3)}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestDAPNoAttackUnbiased(t *testing.T) {
	// The paper's ε₀ = 1/16: Fig. 5(c) shows the EMF false-positive rate
	// stays at 2–4% there, which bounds the clean-case bias.
	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	vals, trueMean := uniformValues(3, 20000, -0.6, 0.2)
	est, err := d.Run(rng.New(4), vals, attack.None{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-trueMean) > 0.09 {
		t.Fatalf("clean estimate %v, want ~%v", est.Mean, trueMean)
	}
	if est.Gamma > 0.1 {
		t.Fatalf("clean γ̂ = %v, want small", est.Gamma)
	}
}

func TestDAPDefendsAgainstBBA(t *testing.T) {
	vals, trueMean := uniformValues(5, 15000, -0.8, 0)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	const gamma = 0.25

	for _, scheme := range Schemes() {
		d, err := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		est, err := d.Run(rng.New(6), vals, adv, gamma)
		if err != nil {
			t.Fatal(err)
		}
		// Ostrich on the same threat: single-group ε collection.
		reports, err := CollectPM(rng.New(6), vals, 1, adv, gamma, 0)
		if err != nil {
			t.Fatal(err)
		}
		ostrich := stats.Mean(reports)
		if math.Abs(est.Mean-trueMean) >= math.Abs(ostrich-trueMean) {
			t.Fatalf("%v: DAP (%v) should beat Ostrich (%v) vs truth %v",
				scheme, est.Mean, ostrich, trueMean)
		}
		if !est.PoisonedRight {
			t.Fatalf("%v: side probe failed", scheme)
		}
		if scheme != SchemeEMF && math.Abs(est.Gamma-gamma) > 0.12 {
			t.Fatalf("%v: γ̂ = %v, want ~%v", scheme, est.Gamma, gamma)
		}
	}
}

func TestDAPEstimateInternals(t *testing.T) {
	vals, _ := uniformValues(7, 12000, -0.8, 0)
	adv := attack.NewBBA(attack.RangeHighQuarter, attack.DistUniform)
	d, _ := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: SchemeCEMFStar})
	est, err := d.Run(rng.New(8), vals, adv, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.GroupMeans) != 3 || len(est.Weights) != 3 || len(est.NHat) != 3 {
		t.Fatal("per-group outputs missing")
	}
	var wSum float64
	for _, w := range est.Weights {
		wSum += w
	}
	if math.Abs(wSum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", wSum)
	}
	if est.VarMin <= 0 {
		t.Fatalf("VarMin = %v", est.VarMin)
	}
	// Larger-ε groups have lower worst-case variance and fewer reports;
	// with equal user counts they must receive more weight.
	if est.Weights[0] <= est.Weights[2] {
		t.Fatalf("weights not decreasing with group index: %v", est.Weights)
	}
	for _, m := range est.GroupMeans {
		if m < -1 || m > 1 {
			t.Fatalf("group mean %v outside [-1,1]", m)
		}
	}
}

func TestDAPDeterministicAtFixedSeed(t *testing.T) {
	vals, _ := uniformValues(9, 6000, -0.5, 0.5)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	d, _ := NewDAP(Params{Eps: 1, Eps0: 0.5})
	a, err := d.Run(rng.New(10), vals, adv, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Run(rng.New(10), vals, adv, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean {
		t.Fatal("DAP not deterministic at fixed seed")
	}
}

func TestCollectPM(t *testing.T) {
	vals, _ := uniformValues(11, 5000, -1, 1)
	reports, err := CollectPM(rng.New(12), vals, 1, attack.None{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5000 {
		t.Fatalf("reports = %d", len(reports))
	}
	if _, err := CollectPM(rng.New(1), vals, -1, nil, 0, 0); err == nil {
		t.Fatal("bad eps accepted")
	}
}

func TestDAPWeightModeGeneral(t *testing.T) {
	vals, trueMean := uniformValues(13, 9000, -0.5, 0)
	d, _ := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: SchemeEMFStar, WeightMode: WeightsGeneral})
	est, err := d.Run(rng.New(14), vals, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-trueMean) > 0.3 {
		t.Fatalf("general-weights estimate %v far from %v", est.Mean, trueMean)
	}
}
