package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/stats"
)

// Baseline is the §IV protocol: every user perturbs her value twice, once
// with a small probing budget ε_α and once with the estimation budget ε_β
// (ε_α + ε_β = ε, ε_α ≪ ε_β). The collector probes Byzantine features on
// the ε_α reports with EMF and removes the poison mass from the ε_β mean
// (Eq. 12). Its known flaw — attackers may behave honestly on the probing
// budget — motivates DAP and is reproducible via GamedCollect.
type Baseline struct {
	// EpsAlpha is the probing budget ε_α.
	EpsAlpha float64
	// EpsBeta is the estimation budget ε_β.
	EpsBeta float64
	// Scheme selects EMF, EMF* or CEMF* for the probing stage.
	Scheme Scheme
	// OPrime is the pessimistic mean initialization (default 0).
	OPrime float64
	// SuppressFactor is CEMF*'s threshold factor (0 selects 0.5).
	SuppressFactor float64
	// EMFMaxIter caps EM iterations (0 selects the emf default).
	EMFMaxIter int

	mechAlpha, mechBeta *pm.Mechanism
}

// NewBaseline validates the budget split and precomputes mechanisms.
func NewBaseline(epsAlpha, epsBeta float64, scheme Scheme) (*Baseline, error) {
	if epsAlpha <= 0 || epsBeta <= 0 {
		return nil, badSpec("baseline budgets must be positive")
	}
	if epsAlpha >= epsBeta {
		return nil, badSpec("baseline requires eps_alpha << eps_beta")
	}
	ma, err := pm.New(epsAlpha)
	if err != nil {
		return nil, err
	}
	mb, err := pm.New(epsBeta)
	if err != nil {
		return nil, err
	}
	return &Baseline{EpsAlpha: epsAlpha, EpsBeta: epsBeta, Scheme: scheme, mechAlpha: ma, mechBeta: mb}, nil
}

// BaselineCollection holds the two report sets V′(α) and V′(β).
type BaselineCollection struct {
	Alpha []float64
	Beta  []float64
}

// Collect simulates users under the baseline protocol. Byzantine users
// poison both report sets (the honest-threat assumption of §IV).
func (b *Baseline) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*BaselineCollection, error) {
	return b.collect(r, values, adv, gamma, false)
}

// GamedCollect simulates the §V attack on the baseline: Byzantine users
// report *honestly* on the probing budget ε_α (hiding from EMF) and send
// poison only on ε_β.
func (b *Baseline) GamedCollect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*BaselineCollection, error) {
	return b.collect(r, values, adv, gamma, true)
}

func (b *Baseline) collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64, gamed bool) (*BaselineCollection, error) {
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("%w: gamma must lie in [0,1)", ErrDomain)
	}
	if adv == nil {
		adv = attack.None{}
	}
	n := len(values)
	nByz := int(math.Round(gamma * float64(n)))
	perm := r.Perm(n)
	col := &BaselineCollection{
		Alpha: make([]float64, 0, n),
		Beta:  make([]float64, 0, n),
	}
	envA := attack.EnvFor(b.mechAlpha, b.OPrime)
	envB := attack.EnvFor(b.mechBeta, b.OPrime)
	for i, u := range perm {
		byz := i < nByz
		if byz && !gamed {
			col.Alpha = append(col.Alpha, adv.Poison(r, envA, 1)...)
		} else {
			col.Alpha = append(col.Alpha, b.mechAlpha.Perturb(r, values[u]))
		}
		if byz {
			col.Beta = append(col.Beta, adv.Poison(r, envB, 1)...)
		} else {
			col.Beta = append(col.Beta, b.mechBeta.Perturb(r, values[u]))
		}
	}
	return col, nil
}

// Estimate probes Byzantine features on V′(α) and estimates the mean from
// V′(β) per §IV-D: since the α and β poison sets form a unified attack,
// their deviation from O is equal, so M_α estimated from ŷ(α) — rescaled
// between the two output domains — substitutes for M_β in Eq. 12.
func (b *Baseline) Estimate(col *BaselineCollection) (*Estimate, error) {
	if col == nil || len(col.Alpha) == 0 || len(col.Beta) == 0 {
		return nil, badCollection("baseline collection is empty")
	}
	din, dprime := emf.BucketCounts(len(col.Alpha), b.mechAlpha.C())
	m, err := emf.BuildNumericCached(b.mechAlpha, din, dprime)
	if err != nil {
		return nil, err
	}
	return b.estimateFromCounts(m, m.Counts(col.Alpha), float64(len(col.Beta)), stats.Sum(col.Beta))
}

// EstimateHist runs the baseline collector from the histogram sufficient
// statistic: Counts[0] is the ε_α report histogram (EMF probing reads only
// bucket counts), Counts[1]/Sums[1] carry the ε_β report count and exact
// sum that Eq. 12 needs.
func (b *Baseline) EstimateHist(hc *HistCollection) (*Estimate, error) {
	if hc == nil || len(hc.Counts) != 2 || hc.Sums == nil || len(hc.Sums) != 2 {
		return nil, badCollection("baseline estimation expects alpha and beta histograms with sums")
	}
	dprime := len(hc.Counts[0])
	if dprime < 1 {
		return nil, badCollection("baseline alpha histogram is empty")
	}
	m, err := emf.BuildNumericCached(b.mechAlpha, emf.InputBuckets(dprime, b.mechAlpha.C()), dprime)
	if err != nil {
		return nil, err
	}
	nBeta := stats.Sum(hc.Counts[1])
	if nBeta <= 0 {
		return nil, badCollection("baseline beta histogram holds no reports")
	}
	return b.estimateFromCounts(m, hc.Counts[0], nBeta, hc.Sums[1])
}

// estimateFromCounts is the shared collector core: probe on the ε_α
// histogram, remove the rescaled poison mass from the ε_β mean.
func (b *Baseline) estimateFromCounts(m *emf.Matrix, counts []float64, nBeta, sumBeta float64) (*Estimate, error) {
	cfg := emf.Config{Tol: emf.PaperTol(b.EpsAlpha), MaxIter: b.EMFMaxIter, Accelerate: true}
	probe, err := emf.ProbeSide(m, counts, b.OPrime, cfg)
	if err != nil {
		return nil, err
	}
	var diag emfDiag
	diag.observe(probe.Left, probe.Right)
	side := probe.Side
	var poison []int
	if side == emf.Right {
		poison = m.PoisonRight(b.OPrime)
	} else {
		poison = m.PoisonLeft(b.OPrime)
	}
	res := probe.Chosen()
	switch b.Scheme {
	case SchemeEMFStar:
		// The probe's chosen fit solved the same poison layout; seed the
		// constrained re-run from it.
		cfg.Init = res
		res, err = emf.RunConstrained(m, counts, poison, res.Gamma(), cfg)
	case SchemeCEMFStar:
		factor := b.SuppressFactor
		if factor <= 0 {
			factor = 0.5
		}
		res, err = emf.RunConcentrated(m, counts, res, res.Gamma(), factor, cfg)
	}
	if err != nil {
		return nil, err
	}
	if res != probe.Chosen() {
		diag.observe(res)
	}
	gamma := res.Gamma()
	// M_α lives on the ε_α output domain [−C_α, C_α]; the unified-attack
	// assumption equates the *deviation impact*, so rescale the poison mean
	// into the ε_β domain before subtracting (M_α = M_β in the paper's
	// shared-domain formulation).
	poisonMeanAlpha := emf.PoisonMean(m, res)
	scale := b.mechBeta.C() / b.mechAlpha.C()
	poisonMeanBeta := stats.Clamp(poisonMeanAlpha*scale, -b.mechBeta.C(), b.mechBeta.C())

	mHat := gamma * nBeta
	if mHat > 0.95*nBeta {
		mHat = 0.95 * nBeta
	}
	mean := (sumBeta - mHat*poisonMeanBeta) / (nBeta - mHat)
	est := &Estimate{
		Mean:          stats.Clamp(mean, -1, 1),
		PoisonedRight: side == emf.Right,
		Gamma:         gamma,
		GroupMeans:    []float64{stats.Clamp(mean, -1, 1)},
		GroupGammas:   []float64{gamma},
		Weights:       []float64{1},
		NHat:          []float64{nBeta - mHat},
	}
	diag.apply(est)
	return est, nil
}

// Run is Collect followed by Estimate.
func (b *Baseline) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Estimate, error) {
	col, err := b.Collect(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return b.Estimate(col)
}
