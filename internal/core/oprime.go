package core

import (
	"math"
	"sort"
)

// PessimisticO implements Theorem 2: a pessimistic initialization O′ of
// the true mean computed from collected values by discarding the largest
// ⌈γsup·N⌉ values (the smallest when the suspected poisoned side is left)
// and averaging the remainder. The result satisfies O′ ≤ O when the
// poisoned side is right and O′ ≥ O when it is left, so the BBA analysis
// never excludes genuine poison values.
//
// γsup defaults to the threat model's Byzantine bound 1/2 when gammaSup
// is zero; prior knowledge can lower it (§IV-A footnote 4).
func PessimisticO(reports []float64, gammaSup float64, poisonedRight bool) float64 {
	if len(reports) == 0 {
		return 0
	}
	if gammaSup <= 0 {
		gammaSup = 0.5
	}
	if gammaSup >= 1 {
		gammaSup = 1 - 1e-9
	}
	s := make([]float64, len(reports))
	copy(s, reports)
	sort.Float64s(s)
	cut := int(math.Ceil(gammaSup * float64(len(s))))
	if cut >= len(s) {
		cut = len(s) - 1
	}
	if poisonedRight {
		s = s[:len(s)-cut]
	} else {
		s = s[cut:]
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}
