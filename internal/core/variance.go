package core

import (
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/rng"
	"repro/internal/stats"
)

// VarianceEstimator generalizes DAP beyond the mean (§V-D, "DAP is not
// limited to mean estimation"): it estimates the *variance* of the normal
// users' values under the same threat model. The user population is split
// in half; one half runs the mean pipeline on v, the other on the
// transformed value t = 2v²−1 ∈ [−1,1] (so E[t] = 2E[v²]−1), each half
// under its own full-budget DAP. The variance follows from
// Var = E[v²] − E[v]². Every user still reports exactly one statistic and
// spends exactly ε.
type VarianceEstimator struct {
	// Params configures both underlying DAP instances.
	Params Params
}

// VarianceEstimate is the output of a variance-estimation round.
type VarianceEstimate struct {
	// Mean is the estimated first moment E[v].
	Mean float64
	// SecondMoment is the estimated E[v²] (clamped into [0,1]).
	SecondMoment float64
	// Variance is max(0, SecondMoment − Mean²).
	Variance float64
	// MeanEst and MomentEst expose the two underlying DAP estimates.
	MeanEst, MomentEst *Estimate
}

// Run executes one variance-estimation round against adv with Byzantine
// proportion gamma.
func (ve *VarianceEstimator) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*VarianceEstimate, error) {
	if len(values) < 4 {
		return nil, badCollection("variance estimation needs at least four users")
	}
	d1, err := NewDAP(ve.Params)
	if err != nil {
		return nil, err
	}
	d2, err := NewDAP(ve.Params)
	if err != nil {
		return nil, err
	}
	// Random disjoint halves: each user contributes one statistic only.
	perm := rng.SampleWithoutReplacement(r, len(values), len(values))
	half := len(values) / 2
	meanVals := make([]float64, 0, half)
	momentVals := make([]float64, 0, len(values)-half)
	for i, u := range perm {
		if i < half {
			meanVals = append(meanVals, values[u])
		} else {
			v := values[u]
			momentVals = append(momentVals, 2*v*v-1)
		}
	}
	meanEst, err := d1.Run(r, meanVals, adv, gamma)
	if err != nil {
		return nil, err
	}
	momentEst, err := d2.Run(r, momentVals, adv, gamma)
	if err != nil {
		return nil, err
	}
	m2 := stats.Clamp((momentEst.Mean+1)/2, 0, 1)
	variance := m2 - meanEst.Mean*meanEst.Mean
	if variance < 0 {
		variance = 0
	}
	return &VarianceEstimate{
		Mean:         meanEst.Mean,
		SecondMoment: m2,
		Variance:     variance,
		MeanEst:      meanEst,
		MomentEst:    momentEst,
	}, nil
}
