package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/emf"
	"repro/internal/rng"
)

// warmMeanFixture builds a mean-task DAP and one attacked collection.
func warmMeanFixture(t *testing.T, scheme Scheme) (*DAP, *Collection) {
	t.Helper()
	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	values := make([]float64, 6000)
	for i := range values {
		values[i] = rng.Uniform(r, -0.8, 0.1)
	}
	col, err := d.Collect(r, values, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return d, col
}

// Warm-starting an estimate from its own fits must reproduce the cold fit
// within tolerance while cutting solver iterations — for every mechanism
// (PM mean, SW distribution, k-RR frequency).
func TestWarmStartToleranceEquivalence(t *testing.T) {
	t.Run("pm", func(t *testing.T) {
		for _, scheme := range Schemes() {
			d, col := warmMeanFixture(t, scheme)
			cold, err := d.Estimate(col)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := d.EstimateWarm(col, cold.Warm)
			if err != nil {
				t.Fatal(err)
			}
			if warm.WarmHits == 0 {
				t.Fatalf("%v: no solver run was warm-started", scheme)
			}
			if warm.EMFIters >= cold.EMFIters {
				t.Fatalf("%v: warm start did not cut iterations: %d vs %d", scheme, warm.EMFIters, cold.EMFIters)
			}
			if diff := math.Abs(warm.Mean - cold.Mean); diff > 0.02 {
				t.Fatalf("%v: warm mean %v vs cold %v", scheme, warm.Mean, cold.Mean)
			}
			for g := range cold.GroupMeans {
				if diff := math.Abs(warm.GroupMeans[g] - cold.GroupMeans[g]); diff > 0.05 {
					t.Fatalf("%v: group %d mean warm %v vs cold %v", scheme, g, warm.GroupMeans[g], cold.GroupMeans[g])
				}
			}
		}
	})
	t.Run("sw", func(t *testing.T) {
		d, err := NewSWDAP(SWParams{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(22)
		values := make([]float64, 6000)
		for i := range values {
			values[i] = rng.Beta(r, 2, 5)
		}
		col, err := d.Collect(r, values, attack.SWTop{}, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := d.Estimate(col)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := d.EstimateWarm(col, cold.Warm)
		if err != nil {
			t.Fatal(err)
		}
		if warm.WarmHits == 0 {
			t.Fatal("no SW solver run was warm-started")
		}
		if warm.EMFIters >= cold.EMFIters {
			t.Fatalf("SW warm start did not cut iterations: %d vs %d", warm.EMFIters, cold.EMFIters)
		}
		if diff := math.Abs(warm.Mean - cold.Mean); diff > 0.02 {
			t.Fatalf("SW warm mean %v vs cold %v", warm.Mean, cold.Mean)
		}
		for k := range cold.XHat {
			if diff := math.Abs(warm.XHat[k] - cold.XHat[k]); diff > 0.02 {
				t.Fatalf("x̂[%d]: warm %v vs cold %v", k, warm.XHat[k], cold.XHat[k])
			}
		}
	})
	t.Run("krr", func(t *testing.T) {
		f, err := NewFreqDAP(FreqParams{Eps: 1, Eps0: 1.0 / 16, K: 12, Scheme: SchemeEMFStar})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(23)
		cats := make([]int, 8000)
		for i := range cats {
			cats[i] = r.IntN(12) % 7
		}
		col, err := f.CollectFreq(r, cats, []int{11}, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := f.EstimateFreq(col)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := f.EstimateFreqWarm(col, cold.Warm)
		if err != nil {
			t.Fatal(err)
		}
		if warm.WarmHits == 0 {
			t.Fatal("no k-RR solver run was warm-started")
		}
		if warm.EMFIters >= cold.EMFIters {
			t.Fatalf("k-RR warm start did not cut iterations: %d vs %d", warm.EMFIters, cold.EMFIters)
		}
		for j := range cold.Freqs {
			if diff := math.Abs(warm.Freqs[j] - cold.Freqs[j]); diff > 0.02 {
				t.Fatalf("freq[%d]: warm %v vs cold %v", j, warm.Freqs[j], cold.Freqs[j])
			}
		}
	})
}

// The γ-grid sweep case: an estimate warm-started from a *different*
// collection's fits (neighbouring γ) must agree with the cold estimate of
// the same collection within tolerance.
func TestWarmStartAcrossCollections(t *testing.T) {
	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeCEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	values := make([]float64, 6000)
	for i := range values {
		values[i] = rng.Uniform(r, -0.8, 0.1)
	}
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	colA, err := d.Collect(r, values, adv, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	colB, err := d.Collect(r, values, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.Estimate(colA)
	if err != nil {
		t.Fatal(err)
	}
	coldB, err := d.Estimate(colB)
	if err != nil {
		t.Fatal(err)
	}
	warmB, err := d.EstimateWarm(colB, first.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if warmB.WarmHits == 0 {
		t.Fatal("no solver run was warm-started from the neighbour cell")
	}
	if diff := math.Abs(warmB.Mean - coldB.Mean); diff > 0.02 {
		t.Fatalf("neighbour-warmed mean %v vs cold %v", warmB.Mean, coldB.Mean)
	}
	if diff := math.Abs(warmB.Gamma - coldB.Gamma); diff > 0.02 {
		t.Fatalf("neighbour-warmed γ̂ %v vs cold %v", warmB.Gamma, coldB.Gamma)
	}
}

// The context plumbing: estimators built by Build read the warm state
// from the context and hand the successor state back in Result.Warm.
func TestWarmStateViaContext(t *testing.T) {
	if WarmFromContext(context.Background()) != nil {
		t.Fatal("empty context produced a warm state")
	}
	if WarmFromContext(nil) != nil {
		t.Fatal("nil context produced a warm state")
	}
	est, err := Build(NewSpec(MeanTask(), WithBudget(1, 1.0/16), WithScheme(SchemeEMFStar)))
	if err != nil {
		t.Fatal(err)
	}
	collector := est.(Collector)
	r := rng.New(41)
	values := make([]float64, 5000)
	for i := range values {
		values[i] = rng.Uniform(r, -0.5, 0.5)
	}
	col, err := collector.Collect(r, values, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := est.Estimate(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	if first.Warm == nil {
		t.Fatal("estimate returned no warm state")
	}
	// Even a cold estimate warm-chains internally (the probe fit seeds
	// group h−1), so the context-carried state must add strictly more
	// warm-started runs (both probes plus every group fit).
	second, err := est.Estimate(WithWarm(context.Background(), first.Warm), col)
	if err != nil {
		t.Fatal(err)
	}
	if second.WarmHits <= first.WarmHits {
		t.Fatalf("context-carried warm state was not applied: %d warm hits vs cold %d",
			second.WarmHits, first.WarmHits)
	}
	if math.Abs(second.Mean-first.Mean) > 0.02 {
		t.Fatalf("warm mean %v vs cold %v", second.Mean, first.Mean)
	}
}

// A mismatched warm state (different layout) must silently degrade to a
// cold start, not crash or corrupt the estimate.
func TestWarmStateLayoutMismatch(t *testing.T) {
	d, col := warmMeanFixture(t, SchemeEMFStar)
	cold, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewDAP(Params{Eps: 2, Eps0: 1.0 / 16, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(51)
	values := make([]float64, 6000)
	for i := range values {
		values[i] = rng.Uniform(r, -0.8, 0.1)
	}
	colOther, err := other.Collect(r, values, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	estOther, err := other.Estimate(colOther)
	if err != nil {
		t.Fatal(err)
	}
	// 6-group warm state fed to a 5-group protocol with different bucket
	// resolutions: every seed is shape-checked away.
	res, err := d.EstimateWarm(col, estOther.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Mean - cold.Mean); diff > 0.05 {
		t.Fatalf("mismatched warm state shifted the estimate: %v vs %v", res.Mean, cold.Mean)
	}
}

// The per-iteration estimation path must stay allocation-free: raising the
// iteration budget may not raise the allocation count of EstimateHist.
func TestEstimateHistIterationAllocsStable(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guard applies to production builds")
	}
	build := func(maxIter int) *DAP {
		d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar, EMFMaxIter: maxIter})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dShort, dLong := build(6), build(120)
	_, col := warmMeanFixture(t, SchemeEMFStar)
	hc := histFromCollection(t, dShort, col)
	measure := func(d *DAP) float64 {
		// Warm the matrix cache and state pool off the measurement.
		if _, err := d.EstimateHist(hc); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := d.EstimateHist(hc); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := measure(dShort), measure(dLong)
	// Slack of a few allocs absorbs pool refills under GC pressure; the
	// guard catches per-iteration allocations, which would scale ~20x.
	if long > short+4 {
		t.Fatalf("iterations allocate: %v allocs at 6 iters vs %v at 120", short, long)
	}
}

func BenchmarkEstimateHist(b *testing.B) {
	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar, EMFMaxIter: 60})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(61)
	values := make([]float64, 6000)
	for i := range values {
		values[i] = rng.Uniform(r, -0.8, 0.1)
	}
	col, err := d.Collect(r, values, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.25)
	if err != nil {
		b.Fatal(err)
	}
	hc := &HistCollection{Counts: make([][]float64, d.H()), Sums: make([]float64, d.H())}
	for g, reports := range col.Groups {
		din, dprime := emf.BucketCounts(len(reports), d.Mechanism(g).C())
		m, err := emf.BuildNumericCached(d.Mechanism(g), din, dprime)
		if err != nil {
			b.Fatal(err)
		}
		hc.Counts[g] = m.Counts(reports)
		for _, v := range reports {
			hc.Sums[g] += v
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.EstimateHist(hc); err != nil {
			b.Fatal(err)
		}
	}
}
