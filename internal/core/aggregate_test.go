package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptimalWeightsSumToOne(t *testing.T) {
	b := []float64{1, 2, 4}
	n := []float64{10, 10, 10}
	for _, mode := range []WeightMode{WeightsPaper, WeightsGeneral} {
		w, err := OptimalWeights(b, n, mode)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, x := range w {
			s += x
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("mode %v: weights sum to %v", mode, s)
		}
	}
}

func TestOptimalWeightsPaperFormula(t *testing.T) {
	// Algorithm 5: w_t = [B_t Σ 1/B_i]⁻¹.
	b := []float64{2, 4}
	w, err := OptimalWeights(b, []float64{5, 5}, WeightsPaper)
	if err != nil {
		t.Fatal(err)
	}
	sumInv := 1.0/2 + 1.0/4
	for t2, bt := range b {
		want := 1 / (bt * sumInv)
		if math.Abs(w[t2]-want) > 1e-12 {
			t.Fatalf("w[%d] = %v, want %v", t2, w[t2], want)
		}
	}
}

// DESIGN.md decision 4: paper weights coincide with the general optimum
// when all groups hold equal normal-user counts.
func TestWeightsEquivalenceEqualGroups(t *testing.T) {
	f := func(b1, b2, b3 uint8) bool {
		b := []float64{1 + float64(b1), 1 + float64(b2), 1 + float64(b3)}
		n := []float64{7, 7, 7}
		wp, err1 := OptimalWeights(b, n, WeightsPaper)
		wg, err2 := OptimalWeights(b, n, WeightsGeneral)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range wp {
			if math.Abs(wp[i]-wg[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsDivergeUnequalGroups(t *testing.T) {
	b := []float64{2, 2}
	n := []float64{1, 10}
	wp, _ := OptimalWeights(b, n, WeightsPaper)
	wg, _ := OptimalWeights(b, n, WeightsGeneral)
	if math.Abs(wp[0]-wg[0]) < 1e-6 {
		t.Fatal("paper and general weights should differ for unequal groups")
	}
}

func TestOptimalWeightsValidation(t *testing.T) {
	if _, err := OptimalWeights(nil, nil, WeightsPaper); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := OptimalWeights([]float64{1}, []float64{1, 2}, WeightsPaper); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := OptimalWeights([]float64{0}, []float64{1}, WeightsPaper); err == nil {
		t.Fatal("zero variance proxy accepted")
	}
}

func TestMinVariance(t *testing.T) {
	// Theorem 6: Var_min = [Σ n̂²/B]⁻¹.
	b := []float64{2, 4}
	n := []float64{3, 5}
	want := 1 / (9.0/2 + 25.0/4)
	if got := MinVariance(b, n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MinVariance = %v, want %v", got, want)
	}
	if got := MinVariance(nil, nil); got != 0 {
		t.Fatalf("empty MinVariance = %v", got)
	}
}

// Lower-variance groups (smaller B) must receive larger weights.
func TestWeightsOrdering(t *testing.T) {
	b := []float64{1, 10}
	w, err := OptimalWeights(b, []float64{5, 5}, WeightsPaper)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] <= w[1] {
		t.Fatalf("weights not ordered by precision: %v", w)
	}
}

func TestAggregate(t *testing.T) {
	if got := Aggregate([]float64{1, 3}, []float64{0.5, 0.5}); got != 2 {
		t.Fatalf("Aggregate = %v", got)
	}
}

// Minimal variance is attained at the optimal weights: perturbing them
// increases Σ w²B/n̂².
func TestWeightsAchieveMinVariance(t *testing.T) {
	b := []float64{2, 3, 5}
	n := []float64{4, 6, 8}
	w, err := OptimalWeights(b, n, WeightsGeneral)
	if err != nil {
		t.Fatal(err)
	}
	variance := func(w []float64) float64 {
		var s float64
		for t := range w {
			s += w[t] * w[t] * b[t] / (n[t] * n[t])
		}
		return s
	}
	opt := variance(w)
	if math.Abs(opt-MinVariance(b, n)) > 1e-12 {
		t.Fatalf("optimal variance %v != MinVariance %v", opt, MinVariance(b, n))
	}
	// Shift mass between two groups, keeping Σw = 1.
	for _, delta := range []float64{0.01, -0.01, 0.1} {
		w2 := append([]float64(nil), w...)
		w2[0] += delta
		w2[1] -= delta
		if variance(w2) < opt {
			t.Fatalf("perturbed weights beat the optimum: %v < %v", variance(w2), opt)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemeEMF.String() != "EMF" || SchemeEMFStar.String() != "EMF*" || SchemeCEMFStar.String() != "CEMF*" {
		t.Fatal("scheme names broken")
	}
	if Scheme(42).String() != "unknown" {
		t.Fatal("unknown scheme name")
	}
	if len(Schemes()) != 3 {
		t.Fatal("Schemes() should list three schemes")
	}
}

func TestGroupCount(t *testing.T) {
	// ε=1, ε0=1/16 → h = 4+1 = 5 (paper's Fig. 6 setting at ε=1).
	if got := groupCount(1, 1.0/16); got != 5 {
		t.Fatalf("h = %d, want 5", got)
	}
	if got := groupCount(2, 1.0/16); got != 6 {
		t.Fatalf("h = %d, want 6", got)
	}
	if got := groupCount(1, 1); got != 1 {
		t.Fatalf("h = %d, want 1", got)
	}
}
