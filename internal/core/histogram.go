package core

import (
	"math"

	"repro/internal/emf"
	"repro/internal/stats"
)

// HistCollection is the sufficient statistic of a collection for the
// estimator: one output-bucket histogram per group (at whatever resolution
// d′ the histogram was accumulated) plus the exact per-group report sums.
// The streaming engine (internal/stream) maintains these incrementally so
// an estimate never rescans raw reports; Estimate itself reduces a raw
// Collection to the same statistic. Feeding either path the same reports
// at the same d′ yields identical estimates (see TestEstimateHistEquivalence).
type HistCollection struct {
	// Counts[t][i] is the number of group-t reports in output bucket i.
	// len(Counts[t]) fixes the group's d′; the input resolution follows via
	// emf.InputBuckets exactly as in the batch path.
	Counts [][]float64
	// Sums[t] is Σ of group t's raw report values. The mean pipeline uses
	// it for the poison-mass correction (Eq. 13); the SW pipeline reads the
	// mean off the reconstructed histogram and ignores it.
	Sums []float64
}

// validate checks the collection shape against a group count.
func (hc *HistCollection) validate(h int) error {
	if hc == nil || len(hc.Counts) != h {
		return badCollection("histogram collection does not match group layout")
	}
	if hc.Sums != nil && len(hc.Sums) != h {
		return badCollection("histogram sums do not match group layout")
	}
	return nil
}

// sum returns Sums[t], or 0 when sums were not provided.
func (hc *HistCollection) sum(t int) float64 {
	if hc.Sums == nil {
		return 0
	}
	return hc.Sums[t]
}

// EstimateHist runs the collector pipeline (stages 3–5) directly from
// per-group histograms — the streaming entry point. The transform matrix
// resolution is derived from each histogram's length via emf.InputBuckets,
// so a histogram accumulated at the d′ that BucketCounts would have picked
// reproduces Estimate on the same reports exactly. Under AutoOPrime the
// Theorem 2 trimmed mean is computed from the smallest-budget histogram
// (bucket centers stand in for the sorted raw reports), the only place the
// two paths can differ — by at most one bucket width.
func (d *DAP) EstimateHist(hc *HistCollection) (*Estimate, error) {
	return d.EstimateHistWarm(hc, nil)
}

// EstimateHistWarm is EstimateHist with the solver runs seeded from a
// previous estimate's fits — the streaming engine's epoch re-estimation
// path (tolerance-equivalent to the cold run; see WarmState).
func (d *DAP) EstimateHistWarm(hc *HistCollection, warm *WarmState) (*Estimate, error) {
	h := d.H()
	if err := hc.validate(h); err != nil {
		return nil, err
	}
	// The mean pipeline needs the report sums (Eq. 13); without them every
	// group mean would silently collapse toward 0. Only the SW path, which
	// reads means off the reconstructed histogram, may omit them.
	if hc.Sums == nil {
		return nil, badCollection("mean estimation requires report sums")
	}
	matrices := make([]*emf.Matrix, h)
	ns := make([]float64, h)
	sums := make([]float64, h)
	for t := 0; t < h; t++ {
		dprime := len(hc.Counts[t])
		if dprime < 1 {
			return nil, badCollection("group %d histogram is empty", t)
		}
		m, err := emf.BuildNumericCached(d.mechs[t], emf.InputBuckets(dprime, d.mechs[t].C()), dprime)
		if err != nil {
			return nil, err
		}
		matrices[t] = m
		ns[t] = stats.Sum(hc.Counts[t])
		if ns[t] <= 0 {
			return nil, badCollection("group %d holds no reports", t)
		}
		sums[t] = hc.sum(t)
	}
	return d.estimateFromCounts(matrices, hc.Counts, sums, ns, nil, warm)
}

// outCenters returns the output-bucket midpoints of a transform matrix —
// the value each histogram count stands in for.
func outCenters(m *emf.Matrix) []float64 {
	c := make([]float64, m.DPrime)
	for i := range c {
		c[i] = m.OutCenter(i)
	}
	return c
}

// PessimisticOHist is Theorem 2's pessimistic mean over a histogram: the
// largest (smallest, when the suspected poisoned side is left)
// ⌈γsup·N⌉ reports are removed — fractionally within the boundary bucket —
// and the remaining mass is averaged at bucket centers. It matches
// PessimisticO on the underlying reports up to one bucket width, without
// needing the sorted raw values the streaming collector no longer stores.
func PessimisticOHist(counts []float64, centers []float64, gammaSup float64, poisonedRight bool) float64 {
	n := stats.Sum(counts)
	if n <= 0 {
		return 0
	}
	if gammaSup <= 0 {
		gammaSup = 0.5
	}
	if gammaSup >= 1 {
		gammaSup = 1 - 1e-9
	}
	cut := math.Ceil(gammaSup * n)
	if cut >= n {
		cut = n - 1
	}
	keep := n - cut
	var sum, kept float64
	if poisonedRight {
		for i := 0; i < len(counts) && kept < keep; i++ {
			c := math.Min(counts[i], keep-kept)
			sum += c * centers[i]
			kept += c
		}
	} else {
		for i := len(counts) - 1; i >= 0 && kept < keep; i-- {
			c := math.Min(counts[i], keep-kept)
			sum += c * centers[i]
			kept += c
		}
	}
	if kept <= 0 {
		return 0
	}
	return sum / kept
}

// trimHistTop removes the top frac of a histogram's mass (fractionally
// within the boundary bucket) — the histogram analogue of discarding the
// largest quantile of raw reports before the SW pessimistic-O′ EMS fit.
func trimHistTop(counts []float64, frac float64) []float64 {
	n := stats.Sum(counts)
	trimmed := append([]float64(nil), counts...)
	drop := frac * n
	for i := len(trimmed) - 1; i >= 0 && drop > 0; i-- {
		c := math.Min(trimmed[i], drop)
		trimmed[i] -= c
		drop -= c
	}
	return trimmed
}

// EstimateHist runs the SW collector pipeline directly from per-group
// histograms. The §V-D pessimistic O′ (trimmed EMS at the smallest budget)
// trims histogram mass instead of sorted raw reports; everything else is
// the batch path fed by the same sufficient statistic. Sums are not used —
// SW means come from the reconstructed input histogram.
func (d *SWDAP) EstimateHist(hc *HistCollection) (*SWEstimate, error) {
	return d.EstimateHistWarm(hc, nil)
}

// EstimateHistWarm is EstimateHist with the solver runs seeded from a
// previous estimate's fits (tolerance-equivalent; see WarmState).
func (d *SWDAP) EstimateHistWarm(hc *HistCollection, warm *WarmState) (*SWEstimate, error) {
	h := d.H()
	if err := hc.validate(h); err != nil {
		return nil, err
	}
	matrices := make([]*emf.Matrix, h)
	ns := make([]float64, h)
	for t := 0; t < h; t++ {
		dprime := len(hc.Counts[t])
		if dprime < 1 {
			return nil, badCollection("group %d histogram is empty", t)
		}
		c := d.mechs[t].OutputDomain().Width()
		m, err := emf.BuildNumericCached(d.mechs[t], emf.InputBuckets(dprime, c), dprime)
		if err != nil {
			return nil, err
		}
		matrices[t] = m
		ns[t] = stats.Sum(hc.Counts[t])
		if ns[t] <= 0 {
			return nil, badCollection("group %d holds no reports", t)
		}
	}
	oPrime, oFit, err := d.pessimisticOHist(matrices[h-1], hc.Counts[h-1], warm.oSeed())
	if err != nil {
		return nil, err
	}
	return d.estimateFromCounts(matrices, hc.Counts, ns, oPrime, oFit, warm)
}

// pessimisticOHist estimates O′ for SW from a histogram by removing the
// top TrimFrac of the mass and running plain EMS on the rest. init
// optionally seeds the EMS fit, which is returned for the warm state.
func (d *SWDAP) pessimisticOHist(m *emf.Matrix, counts []float64, init *emf.Result) (float64, *emf.Result, error) {
	frac := d.p.TrimFrac
	if frac <= 0 {
		frac = 0.5
	}
	trimmed := trimHistTop(counts, frac)
	res, err := emf.RunConstrained(m, trimmed, nil, 0,
		emf.Config{Smooth: true, MaxIter: d.p.EMFMaxIter, Accelerate: true, Init: init})
	if err != nil {
		return 0, nil, err
	}
	return stats.Clamp(stats.HistMean(res.X, m.InCenters()), 0, 1), res, nil
}
