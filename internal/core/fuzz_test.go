package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSpecJSON feeds arbitrary JSON to the task-spec decoder: unmarshal
// must never panic, and any spec that passes Validate must marshal to a
// fixed point — unmarshal ∘ marshal is the identity and validity is
// preserved, so specs logged in the WAL (RecTenantCreate) re-validate on
// recovery exactly as they did at creation.
func FuzzSpecJSON(f *testing.F) {
	for _, s := range []Spec{
		{Task: TaskMean, Eps: 1},
		{Task: TaskFrequency, Eps: 2, K: 8},
		{Task: TaskDistribution, Eps: 0.5},
		{Task: TaskVariance, Eps: 1, Eps0: 0.125},
	} {
		b, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"task":"mean","eps":1e309}`))
	f.Add([]byte(`{"task":[],"eps":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp Spec
		if err := json.Unmarshal(data, &sp); err != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			return // invalid specs are rejected uniformly; nothing to preserve
		}
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var sp2 Spec
		if err := json.Unmarshal(out, &sp2); err != nil {
			t.Fatalf("marshaled spec does not unmarshal: %v", err)
		}
		if err := sp2.Validate(); err != nil {
			t.Fatalf("valid spec became invalid across a JSON round-trip: %v", err)
		}
		out2, err := json.Marshal(sp2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("spec marshal is not a fixed point:\n first %s\nsecond %s", out, out2)
		}
	})
}
