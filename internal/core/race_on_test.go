//go:build race

package core

// raceEnabled reports that the race detector instruments this build; the
// allocation-regression guards skip themselves, since instrumentation
// adds allocations the production build does not make.
const raceEnabled = true
