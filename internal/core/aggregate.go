package core

import (
	"fmt"
	"strings"
)

// WeightMode selects how inter-group aggregation weights are computed.
type WeightMode int

// Weight modes.
const (
	// WeightsPaper uses Algorithm 5 literally: w_t = [B_t·Σ_i 1/B_i]⁻¹,
	// optimal when all groups hold equal normal-user counts (which DAP's
	// equal-sized grouping guarantees).
	WeightsPaper WeightMode = iota
	// WeightsGeneral uses the general minimum-variance solution of the
	// Theorem 6 derivation, w_t ∝ n̂_t²/B_t, which remains optimal for
	// unequal group sizes. Both coincide when n̂_t are equal.
	WeightsGeneral
)

// String implements fmt.Stringer.
func (m WeightMode) String() string {
	if m == WeightsGeneral {
		return "general"
	}
	return "paper"
}

// ParseWeightMode parses a weight-mode name as accepted in task specs
// ("paper"/"algorithm5", "general"/"minvar"; empty selects paper).
func ParseWeightMode(s string) (WeightMode, error) {
	switch strings.ToLower(s) {
	case "", "paper", "algorithm5":
		return WeightsPaper, nil
	case "general", "minvar":
		return WeightsGeneral, nil
	}
	return 0, badSpec("unknown weight mode %q", s)
}

// OptimalWeights computes aggregation weights for group variance proxies
// B_t = n̂_t·Var_worst(ε_t) and estimated normal-user counts n̂_t. The
// weights sum to one.
func OptimalWeights(b, nHat []float64, mode WeightMode) ([]float64, error) {
	if len(b) == 0 || len(b) != len(nHat) {
		return nil, badCollection("weight inputs must be non-empty and equal length")
	}
	w := make([]float64, len(b))
	var total float64
	for t := range b {
		if b[t] <= 0 {
			return nil, fmt.Errorf("%w: variance proxies must be positive", ErrDomain)
		}
		switch mode {
		case WeightsGeneral:
			w[t] = nHat[t] * nHat[t] / b[t]
		default:
			w[t] = 1 / b[t]
		}
		total += w[t]
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: degenerate weights", ErrDomain)
	}
	for t := range w {
		w[t] /= total
	}
	return w, nil
}

// MinVariance returns Theorem 6's minimal worst-case variance of the
// aggregated mean, [Σ_t n̂_t²/B_t]⁻¹.
func MinVariance(b, nHat []float64) float64 {
	var s float64
	for t := range b {
		if b[t] > 0 {
			s += nHat[t] * nHat[t] / b[t]
		}
	}
	if s == 0 {
		return 0
	}
	return 1 / s
}

// Aggregate linearly combines group means with the given weights
// (Algorithm 5 line 5).
func Aggregate(means, weights []float64) float64 {
	var m float64
	for t := range means {
		m += weights[t] * means[t]
	}
	return m
}
