// Package core implements the paper's protocols: the baseline two-budget
// protocol of §IV and the multi-group Differential Aggregation Protocol
// (DAP) of §V, with the EMF/EMF*/CEMF* estimation schemes, Theorem 2's
// pessimistic mean initialization, Algorithm 5's variance-optimal
// inter-group aggregation, and the §V-D extensions to the Square Wave
// mechanism and to categorical frequency estimation.
package core

import (
	"math"
)

// Scheme selects the EMF post-processing used for intra-group estimation.
type Scheme int

// Estimation schemes in the paper's order.
const (
	// SchemeEMF uses plain EMF (Algorithm 2); each group probes its own γ̂.
	SchemeEMF Scheme = iota
	// SchemeEMFStar post-processes with EMF* (Algorithm 4), imposing the
	// γ̂ probed at the smallest budget on every group.
	SchemeEMFStar
	// SchemeCEMFStar post-processes with CEMF* (Theorem 5), additionally
	// suppressing poison buckets below the concentration threshold.
	SchemeCEMFStar
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeEMF:
		return "EMF"
	case SchemeEMFStar:
		return "EMF*"
	case SchemeCEMFStar:
		return "CEMF*"
	}
	return "unknown"
}

// Schemes lists all estimation schemes in paper order.
func Schemes() []Scheme { return []Scheme{SchemeEMF, SchemeEMFStar, SchemeCEMFStar} }

// ParseScheme parses a scheme name as accepted on command lines and wire
// requests ("emf", "emfstar"/"emf*", "cemf"/"cemf*"/"cemfstar"; empty
// selects CEMF*, the paper's best performer).
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "emf", "EMF":
		return SchemeEMF, nil
	case "emfstar", "emf*", "EMF*":
		return SchemeEMFStar, nil
	case "", "cemf", "cemf*", "cemfstar", "CEMF*":
		return SchemeCEMFStar, nil
	}
	return 0, badSpec("unknown scheme %q", s)
}

// Estimate is the collector's output for one protocol run.
type Estimate struct {
	// Mean is the final aggregated mean estimate (the paper's M̃).
	Mean float64
	// PoisonedRight reports the probed poisoned side.
	PoisonedRight bool
	// Gamma is the Byzantine proportion γ̂ probed at the smallest budget.
	Gamma float64
	// GroupMeans are the intra-group estimates M_t (Eq. 13).
	GroupMeans []float64
	// GroupGammas are the per-group γ̂ used for poison removal.
	GroupGammas []float64
	// Weights are the aggregation weights w_t of Algorithm 5.
	Weights []float64
	// NHat are the estimated normal-user counts n̂_t per group.
	NHat []float64
	// VarMin is Theorem 6's minimal worst-case variance [Σ n̂²/B]⁻¹.
	VarMin float64
	// OPrime is the pessimistic mean initialization used for the poison
	// sets (fixed, or Theorem 2-derived under AutoOPrime).
	OPrime float64
	// EMFIters is the total number of EM-map evaluations across every
	// solver run of this estimate (side probes included) — the cost unit
	// MaxIter bounds.
	EMFIters int
	// EMFRestarts counts SQUAREM extrapolations rejected by the
	// monotonicity safeguard across those runs.
	EMFRestarts int
	// WarmHits counts solver runs seeded from a previous fit.
	WarmHits int
	// Converged reports whether every solver run met its tolerance before
	// MaxIter; false means at least one group returned the MaxIter iterate.
	Converged bool
	// Warm carries this estimate's EM fits for seeding the next estimate
	// over the same layout (see WarmState).
	Warm *WarmState
}

// ConfidenceInterval returns a two-sided normal-approximation interval
// around the aggregated mean using Theorem 6's worst-case variance bound.
// level is the coverage (e.g. 0.95). Because VarMin is a worst-case
// bound, the interval is conservative.
func (e *Estimate) ConfidenceInterval(level float64) (lo, hi float64) {
	if level <= 0 || level >= 1 || e.VarMin <= 0 {
		return e.Mean, e.Mean
	}
	z := zScore(level)
	half := z * math.Sqrt(e.VarMin)
	return e.Mean - half, e.Mean + half
}

// zScore inverts the standard normal CDF for two-sided coverage via
// bisection on erf (stdlib-only, no lookup tables).
func zScore(level float64) float64 {
	target := level // P(|Z| <= z) = erf(z/√2)
	lo, hi := 0.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if math.Erf(mid/math.Sqrt2) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// validateBudgets sanity-checks a (ε, ε0) pair.
func validateBudgets(eps, eps0 float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return badSpec("eps must be positive and finite")
	}
	if eps0 <= 0 || eps0 > eps {
		return badSpec("eps0 must lie in (0, eps]")
	}
	return nil
}

// groupCount returns h = ⌈log₂(ε/ε₀)⌉ + 1 (§V-A).
func groupCount(eps, eps0 float64) int {
	return int(math.Ceil(math.Log2(eps/eps0)-1e-12)) + 1
}
