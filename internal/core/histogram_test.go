package core

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/emf"
	"repro/internal/rng"
	"repro/internal/stats"
)

// histFromCollection reduces a collection to the histogram sufficient
// statistic exactly as Estimate does internally.
func histFromCollection(t *testing.T, d *DAP, col *Collection) *HistCollection {
	t.Helper()
	h := d.H()
	hc := &HistCollection{Counts: make([][]float64, h), Sums: make([]float64, h)}
	for g := 0; g < h; g++ {
		din, dprime := emf.BucketCounts(len(col.Groups[g]), d.Mechanism(g).C())
		m, err := emf.BuildNumericCached(d.Mechanism(g), din, dprime)
		if err != nil {
			t.Fatal(err)
		}
		hc.Counts[g] = m.Counts(col.Groups[g])
		hc.Sums[g] = stats.Sum(col.Groups[g])
	}
	return hc
}

// The histogram-equivalence invariant: the per-group output histogram plus
// the exact report sum is a sufficient statistic, so EstimateHist must
// reproduce Estimate bit for bit on the same reports.
func TestEstimateHistEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme Scheme
		gamma  float64
		auto   bool
	}{
		{"emf-clean", SchemeEMF, 0, false},
		{"emfstar-attacked", SchemeEMFStar, 0.25, false},
		{"cemfstar-attacked", SchemeCEMFStar, 0.3, false},
		{"cemfstar-auto-oprime", SchemeCEMFStar, 0.2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: tc.scheme, AutoOPrime: tc.auto})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(11)
			values := make([]float64, 1500)
			for i := range values {
				values[i] = rng.Uniform(r, -0.6, 0.2)
			}
			col, err := d.Collect(r, values, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), tc.gamma)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := d.Estimate(col)
			if err != nil {
				t.Fatal(err)
			}
			hist, err := d.EstimateHist(histFromCollection(t, d, col))
			if err != nil {
				t.Fatal(err)
			}
			// AutoOPrime is the one stage allowed to differ (bucket centers
			// stand in for sorted raw reports); everything else must match
			// exactly, and even with AutoOPrime the estimates must agree to
			// well under a bucket width.
			tol := 0.0
			if tc.auto {
				tol = 0.05
			}
			if diff := math.Abs(batch.Mean - hist.Mean); diff > tol {
				t.Fatalf("mean: batch %v hist %v (diff %g)", batch.Mean, hist.Mean, diff)
			}
			if !tc.auto {
				if batch.Gamma != hist.Gamma {
					t.Fatalf("gamma: batch %v hist %v", batch.Gamma, hist.Gamma)
				}
				for g := range batch.GroupMeans {
					if diff := math.Abs(batch.GroupMeans[g] - hist.GroupMeans[g]); diff > 1e-12 {
						t.Fatalf("group %d mean: batch %v hist %v", g, batch.GroupMeans[g], hist.GroupMeans[g])
					}
					if batch.GroupGammas[g] != hist.GroupGammas[g] {
						t.Fatalf("group %d gamma differs", g)
					}
				}
			}
		})
	}
}

func TestEstimateHistValidation(t *testing.T) {
	d, _ := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: SchemeEMF})
	if _, err := d.EstimateHist(nil); err == nil {
		t.Fatal("nil collection accepted")
	}
	if _, err := d.EstimateHist(&HistCollection{Counts: make([][]float64, 1)}); err == nil {
		t.Fatal("wrong group arity accepted")
	}
	hc := &HistCollection{Counts: make([][]float64, d.H()), Sums: make([]float64, d.H())}
	for i := range hc.Counts {
		hc.Counts[i] = make([]float64, 16)
	}
	if _, err := d.EstimateHist(hc); err == nil {
		t.Fatal("empty histograms accepted")
	}
}

// PessimisticOHist must track PessimisticO up to one bucket width.
func TestPessimisticOHistMatchesRaw(t *testing.T) {
	r := rng.New(3)
	reports := make([]float64, 4000)
	for i := range reports {
		reports[i] = rng.Uniform(r, -2, 2)
	}
	const lo, hi, buckets = -2.5, 2.5, 200
	counts := make([]float64, buckets)
	centers := make([]float64, buckets)
	w := (hi - lo) / buckets
	for i := range centers {
		centers[i] = lo + (float64(i)+0.5)*w
	}
	for _, v := range reports {
		b := int((v - lo) / w)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	for _, right := range []bool{true, false} {
		raw := PessimisticO(reports, 0.4, right)
		hist := PessimisticOHist(counts, centers, 0.4, right)
		if diff := math.Abs(raw - hist); diff > w {
			t.Fatalf("right=%v: raw %v hist %v (diff %g > bucket width %g)", right, raw, hist, diff, w)
		}
	}
}

// SW: the histogram entry point must agree closely with the batch path
// (the trimmed-EMS O′ is the only approximate stage).
func TestSWEstimateHistCloseToBatch(t *testing.T) {
	d, err := NewSWDAP(SWParams{Eps: 1, Eps0: 0.25, Scheme: SchemeCEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	values := make([]float64, 1500)
	for i := range values {
		values[i] = rng.Uniform(r, 0.2, 0.8)
	}
	col, err := d.Collect(r, values, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}
	h := d.H()
	hc := &HistCollection{Counts: make([][]float64, h)}
	for g := 0; g < h; g++ {
		c := d.Mechanism(g).OutputDomain().Width()
		din, dprime := emf.BucketCounts(len(col.Groups[g]), c)
		m, err := emf.BuildNumericCached(d.Mechanism(g), din, dprime)
		if err != nil {
			t.Fatal(err)
		}
		hc.Counts[g] = m.Counts(col.Groups[g])
	}
	hist, err := d.EstimateHist(hc)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(batch.Mean - hist.Mean); diff > 0.05 {
		t.Fatalf("sw mean: batch %v hist %v (diff %g)", batch.Mean, hist.Mean, diff)
	}
}

func TestTrimHistTop(t *testing.T) {
	counts := []float64{4, 4, 4, 4}
	got := trimHistTop(counts, 0.25)
	want := []float64{4, 4, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trim = %v, want %v", got, want)
		}
	}
	// Fractional boundary bucket.
	got = trimHistTop(counts, 0.375)
	want = []float64{4, 4, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trim = %v, want %v", got, want)
		}
	}
	if stats.Sum(counts) != 16 {
		t.Fatal("input mutated")
	}
}
