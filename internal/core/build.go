package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/ldp"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Result is the unified collector output of every task kind. The fields a
// task does not produce stay at their zero value: mean/variance tasks fill
// Mean (and Variance/SecondMoment), distribution tasks add XHat, frequency
// tasks fill Freqs/PoisonCats instead of Mean. The per-group diagnostics
// (GroupMeans, GroupGammas, Weights, NHat) and the probed threat features
// (Gamma, PoisonedRight) are common to all protocol tasks.
type Result struct {
	// Task is the producing spec's task kind.
	Task TaskKind `json:"task"`
	// Mean is the aggregated mean estimate in the protocol's unit domain.
	Mean float64 `json:"mean"`
	// Variance and SecondMoment are filled by TaskVariance.
	Variance     float64 `json:"variance,omitempty"`
	SecondMoment float64 `json:"second_moment,omitempty"`
	// Freqs is the frequency estimate (TaskFrequency; sums to one).
	Freqs []float64 `json:"freqs,omitempty"`
	// XHat is the reconstructed input histogram (TaskDistribution;
	// normalized).
	XHat []float64 `json:"xhat,omitempty"`
	// Gamma is the probed Byzantine proportion γ̂.
	Gamma float64 `json:"gamma"`
	// PoisonedRight is the probed poisoned side (numeric tasks).
	PoisonedRight bool `json:"poisoned_right"`
	// PoisonCats is the probed poisoned category set (TaskFrequency).
	PoisonCats []int `json:"poison_cats,omitempty"`
	// OPrime is the pessimistic mean initialization that anchored the
	// poison sets.
	OPrime float64 `json:"oprime,omitempty"`
	// Per-group diagnostics.
	GroupMeans  []float64   `json:"group_means,omitempty"`
	GroupGammas []float64   `json:"group_gammas,omitempty"`
	GroupFreqs  [][]float64 `json:"group_freqs,omitempty"`
	Weights     []float64   `json:"weights,omitempty"`
	NHat        []float64   `json:"nhat,omitempty"`
	// VarMin is Theorem 6's minimal worst-case variance bound.
	VarMin float64 `json:"var_min,omitempty"`
	// Solver telemetry: EMFIters is the total EM-map evaluations across
	// every solver run of the estimate (probes included), EMFRestarts the
	// SQUAREM extrapolations rejected by the monotonicity safeguard, and
	// WarmHits the runs seeded from a previous fit.
	EMFIters    int `json:"emf_iters,omitempty"`
	EMFRestarts int `json:"emf_restarts,omitempty"`
	WarmHits    int `json:"warm_hits,omitempty"`
	// Converged reports whether every EM fit met its tolerance before
	// MaxIter; false means at least one group silently returned the
	// MaxIter iterate and the estimate may be under-converged.
	Converged bool `json:"converged"`
	// Warm carries the estimate's EM fits for seeding a subsequent
	// estimate over the same layout (attach it to the next call's context
	// with WithWarm). Never serialized.
	Warm *WarmState `json:"-"`
}

// Estimator is the single estimation surface every task kind implements:
// batch estimation over a raw Collection and histogram estimation over
// the streaming sufficient statistic. Build returns one for any valid
// Spec.
type Estimator interface {
	// Spec returns the normalized spec the estimator was built from.
	Spec() Spec
	// Groups returns the protocol group layout (one synthetic full-budget
	// group for defense comparators; 2h groups for variance — the mean
	// half followed by the moment half; alpha and beta for the baseline).
	Groups() []Group
	// Estimate runs the collector pipeline over raw per-group reports.
	Estimate(ctx context.Context, col *Collection) (*Result, error)
	// EstimateHist runs the collector pipeline over per-group output
	// histograms (HistCollection), the entry point of the streaming
	// engine. Estimators that need raw reports (defense comparators)
	// reject it with ErrBadSpec.
	EstimateHist(ctx context.Context, hc *HistCollection) (*Result, error)
}

// Streamable marks estimators that can back a stream tenant: reports are
// ingestible into per-group output histograms over a known domain.
type Streamable interface {
	Estimator
	// OutputDomain returns group t's report domain (the perturbation
	// output interval, or [0,K) for categorical tasks).
	OutputDomain(t int) ldp.Domain
}

// Runner is the simulation entry point shared by the numeric task kinds:
// collect from values under an adversary, then estimate.
type Runner interface {
	Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Result, error)
}

// CatRunner is the categorical simulation entry point.
type CatRunner interface {
	RunCats(r *rand.Rand, cats []int, poisonCats []int, gamma float64) (*Result, error)
}

// CatAdvRunner is the categorical simulation entry point under a
// registry-selected adversary (attack.New): Byzantine users inject the
// categories the adversary emits instead of a fixed uniform poison set.
type CatAdvRunner interface {
	RunCatsAdv(r *rand.Rand, cats []int, adv attack.Adversary, gamma float64) (*Result, error)
}

// Collector is implemented by estimators whose user side can be simulated
// into a raw Collection (the input of Estimate).
type Collector interface {
	Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error)
}

// Build validates sp and returns its estimator. This is the single
// construction path behind batch estimation, stream tenants, the wire API
// and the CLIs; adding a mechanism or task kind plugs in here once and
// appears everywhere.
func Build(sp Spec) (Estimator, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sp = sp.Normalize()
	scheme, _ := ParseScheme(sp.Scheme)
	weights, _ := ParseWeightMode(sp.Weights)
	switch {
	case sp.Defense != nil:
		return newDefenseEstimator(sp)
	case sp.Task == TaskMean:
		d, err := NewDAP(Params{
			Eps: sp.Eps, Eps0: sp.Eps0, Scheme: scheme,
			OPrime: sp.OPrime, AutoOPrime: sp.AutoOPrime, GammaSup: sp.GammaSup,
			SuppressFactor: sp.SuppressFactor, EMFMaxIter: sp.EMFMaxIter,
			WeightMode: weights,
		})
		if err != nil {
			return nil, err
		}
		return &meanEstimator{sp: sp, d: d}, nil
	case sp.Task == TaskDistribution:
		d, err := NewSWDAP(SWParams{
			Eps: sp.Eps, Eps0: sp.Eps0, Scheme: scheme, TrimFrac: sp.TrimFrac,
			SuppressFactor: sp.SuppressFactor, EMFMaxIter: sp.EMFMaxIter,
			WeightMode: weights,
		})
		if err != nil {
			return nil, err
		}
		return &distEstimator{sp: sp, d: d}, nil
	case sp.Task == TaskFrequency:
		d, err := NewFreqDAP(FreqParams{
			Eps: sp.Eps, Eps0: sp.Eps0, K: sp.K, Scheme: scheme,
			SuppressFactor: sp.SuppressFactor, EMFMaxIter: sp.EMFMaxIter,
			WeightMode: weights,
		})
		if err != nil {
			return nil, err
		}
		return &freqEstimator{sp: sp, d: d}, nil
	case sp.Task == TaskVariance:
		p := Params{
			Eps: sp.Eps, Eps0: sp.Eps0, Scheme: scheme,
			OPrime: sp.OPrime, AutoOPrime: sp.AutoOPrime, GammaSup: sp.GammaSup,
			SuppressFactor: sp.SuppressFactor, EMFMaxIter: sp.EMFMaxIter,
			WeightMode: weights,
		}
		d1, err := NewDAP(p)
		if err != nil {
			return nil, err
		}
		d2, err := NewDAP(p)
		if err != nil {
			return nil, err
		}
		return &varianceEstimator{sp: sp, mean: d1, moment: d2}, nil
	case sp.Task == TaskBaseline:
		b, err := NewBaseline(sp.EpsAlpha, sp.EpsBeta, scheme)
		if err != nil {
			return nil, err
		}
		b.OPrime = sp.OPrime
		b.SuppressFactor = sp.SuppressFactor
		b.EMFMaxIter = sp.EMFMaxIter
		return &baselineEstimator{sp: sp, b: b}, nil
	}
	return nil, badSpec("unknown task %q", sp.Task)
}

// ctxErr reports a done context. Adapters check it once at entry; the
// per-group EM fits below are too short-lived to interrupt mid-flight.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// --- mean over PM ---

type meanEstimator struct {
	sp Spec
	d  *DAP
}

func (e *meanEstimator) Spec() Spec                    { return e.sp }
func (e *meanEstimator) Groups() []Group               { return e.d.Groups() }
func (e *meanEstimator) OutputDomain(t int) ldp.Domain { return e.d.Mechanism(t).OutputDomain() }

func (e *meanEstimator) Estimate(ctx context.Context, col *Collection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	est, err := e.d.EstimateWarm(col, WarmFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return resultOfEstimate(TaskMean, est), nil
}

func (e *meanEstimator) EstimateHist(ctx context.Context, hc *HistCollection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	est, err := e.d.EstimateHistWarm(hc, WarmFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return resultOfEstimate(TaskMean, est), nil
}

func (e *meanEstimator) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error) {
	return e.d.Collect(r, values, adv, gamma)
}

func (e *meanEstimator) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Result, error) {
	est, err := e.d.Run(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return resultOfEstimate(TaskMean, est), nil
}

func resultOfEstimate(task TaskKind, est *Estimate) *Result {
	return &Result{
		Task:          task,
		Mean:          est.Mean,
		Gamma:         est.Gamma,
		PoisonedRight: est.PoisonedRight,
		OPrime:        est.OPrime,
		GroupMeans:    est.GroupMeans,
		GroupGammas:   est.GroupGammas,
		Weights:       est.Weights,
		NHat:          est.NHat,
		VarMin:        est.VarMin,
		EMFIters:      est.EMFIters,
		EMFRestarts:   est.EMFRestarts,
		WarmHits:      est.WarmHits,
		Converged:     est.Converged,
		Warm:          est.Warm,
	}
}

// --- distribution over SW ---

type distEstimator struct {
	sp Spec
	d  *SWDAP
}

func (e *distEstimator) Spec() Spec                    { return e.sp }
func (e *distEstimator) Groups() []Group               { return e.d.Groups() }
func (e *distEstimator) OutputDomain(t int) ldp.Domain { return e.d.Mechanism(t).OutputDomain() }

func (e *distEstimator) Estimate(ctx context.Context, col *Collection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	est, err := e.d.EstimateWarm(col, WarmFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return resultOfSW(est), nil
}

func (e *distEstimator) EstimateHist(ctx context.Context, hc *HistCollection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	est, err := e.d.EstimateHistWarm(hc, WarmFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return resultOfSW(est), nil
}

func (e *distEstimator) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error) {
	return e.d.Collect(r, values, adv, gamma)
}

func (e *distEstimator) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Result, error) {
	est, err := e.d.Run(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return resultOfSW(est), nil
}

func resultOfSW(est *SWEstimate) *Result {
	res := resultOfEstimate(TaskDistribution, &est.Estimate)
	res.OPrime = est.OPrime
	res.XHat = est.XHat
	return res
}

// --- frequency over k-RR ---

type freqEstimator struct {
	sp Spec
	d  *FreqDAP
}

func (e *freqEstimator) Spec() Spec      { return e.sp }
func (e *freqEstimator) Groups() []Group { return e.d.Groups() }
func (e *freqEstimator) OutputDomain(int) ldp.Domain {
	return ldp.Domain{Lo: 0, Hi: float64(e.sp.K)}
}

// Estimate accepts raw per-group category reports encoded as float64
// (the Collection currency shared with the numeric tasks); non-integral
// or out-of-range values are rejected with ErrDomain.
func (e *freqEstimator) Estimate(ctx context.Context, col *Collection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if col == nil || len(col.Groups) != e.d.H() {
		return nil, badCollection("collection does not match group layout")
	}
	counts := make([][]float64, len(col.Groups))
	for t, reports := range col.Groups {
		counts[t] = make([]float64, e.sp.K)
		for _, v := range reports {
			c := int(v)
			if v != float64(c) || c < 0 || c >= e.sp.K {
				return nil, fmt.Errorf("%w: %g is not a category in [0,%d)", ErrDomain, v, e.sp.K)
			}
			counts[t][c]++
		}
	}
	est, err := e.d.EstimateFreqWarm(&FreqCollection{Counts: counts, ByzCount: col.ByzCount}, WarmFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return resultOfFreq(est), nil
}

func (e *freqEstimator) EstimateHist(ctx context.Context, hc *HistCollection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if hc == nil {
		return nil, badCollection("histogram collection does not match group layout")
	}
	est, err := e.d.EstimateFreqWarm(&FreqCollection{Counts: hc.Counts}, WarmFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return resultOfFreq(est), nil
}

func (e *freqEstimator) RunCats(r *rand.Rand, cats []int, poisonCats []int, gamma float64) (*Result, error) {
	est, err := e.d.Run(r, cats, poisonCats, gamma)
	if err != nil {
		return nil, err
	}
	return resultOfFreq(est), nil
}

func (e *freqEstimator) RunCatsAdv(r *rand.Rand, cats []int, adv attack.Adversary, gamma float64) (*Result, error) {
	est, err := e.d.RunAdv(r, cats, adv, gamma)
	if err != nil {
		return nil, err
	}
	return resultOfFreq(est), nil
}

func resultOfFreq(est *FreqEstimate) *Result {
	return &Result{
		Task:        TaskFrequency,
		Freqs:       est.Freqs,
		Gamma:       est.Gamma,
		PoisonCats:  est.PoisonCats,
		GroupFreqs:  est.GroupFreqs,
		Weights:     est.Weights,
		EMFIters:    est.EMFIters,
		EMFRestarts: est.EMFRestarts,
		WarmHits:    est.WarmHits,
		Converged:   est.Converged,
		Warm:        est.Warm,
	}
}

// --- variance via split populations ---

type varianceEstimator struct {
	sp     Spec
	mean   *DAP // first h groups: E[v]
	moment *DAP // last h groups: E[2v²−1]
}

func (e *varianceEstimator) Spec() Spec { return e.sp }

// Groups returns the 2h-group layout: the mean half followed by the
// moment half.
func (e *varianceEstimator) Groups() []Group {
	return append(e.mean.Groups(), e.moment.Groups()...)
}

// Collect splits the users into random disjoint halves (each contributes
// one statistic and spends exactly ε), collects the mean half on v and
// the moment half on 2v²−1, and concatenates the group reports.
func (e *varianceEstimator) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error) {
	if len(values) < 4 {
		return nil, badCollection("variance estimation needs at least four users")
	}
	perm := rng.SampleWithoutReplacement(r, len(values), len(values))
	half := len(values) / 2
	meanVals := make([]float64, 0, half)
	momentVals := make([]float64, 0, len(values)-half)
	for i, u := range perm {
		if i < half {
			meanVals = append(meanVals, values[u])
		} else {
			v := values[u]
			momentVals = append(momentVals, 2*v*v-1)
		}
	}
	c1, err := e.mean.Collect(r, meanVals, adv, gamma)
	if err != nil {
		return nil, err
	}
	c2, err := e.moment.Collect(r, momentVals, adv, gamma)
	if err != nil {
		return nil, err
	}
	return &Collection{
		Groups:   append(c1.Groups, c2.Groups...),
		ByzCount: c1.ByzCount + c2.ByzCount,
	}, nil
}

func (e *varianceEstimator) Estimate(ctx context.Context, col *Collection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	h := e.mean.H()
	if col == nil || len(col.Groups) != 2*h {
		return nil, badCollection("variance estimation expects %d groups (mean half then moment half)", 2*h)
	}
	warm := WarmFromContext(ctx)
	m1, err := e.mean.EstimateWarm(&Collection{Groups: col.Groups[:h]}, warm.subState(0))
	if err != nil {
		return nil, err
	}
	m2, err := e.moment.EstimateWarm(&Collection{Groups: col.Groups[h:]}, warm.subState(1))
	if err != nil {
		return nil, err
	}
	return varianceResult(m1, m2), nil
}

func (e *varianceEstimator) EstimateHist(ctx context.Context, hc *HistCollection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	h := e.mean.H()
	if hc == nil || len(hc.Counts) != 2*h || hc.Sums == nil || len(hc.Sums) != 2*h {
		return nil, badCollection("variance estimation expects %d group histograms with sums", 2*h)
	}
	warm := WarmFromContext(ctx)
	m1, err := e.mean.EstimateHistWarm(&HistCollection{Counts: hc.Counts[:h], Sums: hc.Sums[:h]}, warm.subState(0))
	if err != nil {
		return nil, err
	}
	m2, err := e.moment.EstimateHistWarm(&HistCollection{Counts: hc.Counts[h:], Sums: hc.Sums[h:]}, warm.subState(1))
	if err != nil {
		return nil, err
	}
	return varianceResult(m1, m2), nil
}

func (e *varianceEstimator) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Result, error) {
	col, err := e.Collect(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return e.Estimate(context.Background(), col)
}

// varianceResult combines the two half estimates: Var = E[v²] − E[v]²
// with E[v²] = (E[2v²−1]+1)/2. Group diagnostics concatenate the halves;
// solver telemetry sums and the warm states compose.
func varianceResult(m1, m2 *Estimate) *Result {
	res := resultOfEstimate(TaskVariance, m1)
	m2sq := stats.Clamp((m2.Mean+1)/2, 0, 1)
	res.SecondMoment = m2sq
	res.Variance = math.Max(0, m2sq-m1.Mean*m1.Mean)
	res.GroupMeans = append(append([]float64(nil), m1.GroupMeans...), m2.GroupMeans...)
	res.GroupGammas = append(append([]float64(nil), m1.GroupGammas...), m2.GroupGammas...)
	res.Weights = append(append([]float64(nil), m1.Weights...), m2.Weights...)
	res.NHat = append(append([]float64(nil), m1.NHat...), m2.NHat...)
	res.EMFIters = m1.EMFIters + m2.EMFIters
	res.EMFRestarts = m1.EMFRestarts + m2.EMFRestarts
	res.WarmHits = m1.WarmHits + m2.WarmHits
	res.Converged = m1.Converged && m2.Converged
	res.Warm = &WarmState{sub: []*WarmState{m1.Warm, m2.Warm}}
	return res
}

// --- the §IV two-budget baseline ---

type baselineEstimator struct {
	sp Spec
	b  *Baseline
}

func (e *baselineEstimator) Spec() Spec { return e.sp }

// Groups returns the two-budget layout: the probing budget ε_α and the
// estimation budget ε_β, one report each.
func (e *baselineEstimator) Groups() []Group {
	return []Group{
		{Index: 0, Eps: e.b.EpsAlpha, Reports: 1},
		{Index: 1, Eps: e.b.EpsBeta, Reports: 1},
	}
}

func (e *baselineEstimator) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error) {
	col, err := e.b.Collect(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return &Collection{Groups: [][]float64{col.Alpha, col.Beta}}, nil
}

func (e *baselineEstimator) Estimate(ctx context.Context, col *Collection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if col == nil || len(col.Groups) != 2 {
		return nil, badCollection("baseline estimation expects two groups (alpha, beta)")
	}
	est, err := e.b.Estimate(&BaselineCollection{Alpha: col.Groups[0], Beta: col.Groups[1]})
	if err != nil {
		return nil, err
	}
	return resultOfEstimate(TaskBaseline, est), nil
}

func (e *baselineEstimator) EstimateHist(ctx context.Context, hc *HistCollection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	est, err := e.b.EstimateHist(hc)
	if err != nil {
		return nil, err
	}
	return resultOfEstimate(TaskBaseline, est), nil
}

func (e *baselineEstimator) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Result, error) {
	est, err := e.b.Run(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return resultOfEstimate(TaskBaseline, est), nil
}

// --- comparator defenses ---

type defenseEstimator struct {
	sp    Spec
	def   defense.Defense
	right bool
}

func newDefenseEstimator(sp Spec) (*defenseEstimator, error) {
	def, err := defense.New(*sp.Defense)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return &defenseEstimator{
		sp:    sp,
		def:   def,
		right: sp.Defense.Side != "left",
	}, nil
}

// defenseSeed derives the rng seed for a randomized defense (kmeans,
// iforest) from the reports themselves: identical input gives identical
// output, independent of call order or concurrency, with no shared state.
func defenseSeed(reports []float64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211 // FNV-1a
	h := uint64(offset)
	h = (h ^ uint64(len(reports))) * prime
	for _, v := range reports {
		b := math.Float64bits(v)
		h = (h ^ (b & 0xffffffff)) * prime
		h = (h ^ (b >> 32)) * prime
	}
	return h
}

func (e *defenseEstimator) Spec() Spec { return e.sp }

// Groups returns the single full-budget group the comparators operate on.
func (e *defenseEstimator) Groups() []Group {
	return []Group{{Index: 0, Eps: e.sp.Eps, Reports: 1}}
}

func (e *defenseEstimator) Estimate(ctx context.Context, col *Collection) (*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if col == nil || len(col.Groups) != 1 || len(col.Groups[0]) == 0 {
		return nil, badCollection("defense comparators expect one non-empty group")
	}
	mean, err := e.def.Estimate(rng.New(defenseSeed(col.Groups[0])), col.Groups[0], e.right)
	if err != nil {
		return nil, err
	}
	mean = stats.Clamp(mean, -1, 1)
	return &Result{
		Task:          TaskMean,
		Mean:          mean,
		PoisonedRight: e.right,
		GroupMeans:    []float64{mean},
		Weights:       []float64{1},
		// No iterative solver ran (EMFKMeans runs its own internally and
		// reports through its return value), so nothing was left
		// under-converged.
		Converged: true,
	}, nil
}

// EstimateHist is rejected: the comparators are defined on raw reports
// (subset sampling, order statistics), which the histogram statistic
// cannot reproduce.
func (e *defenseEstimator) EstimateHist(context.Context, *HistCollection) (*Result, error) {
	return nil, fmt.Errorf("%w: defense %q needs raw reports and cannot estimate from histograms",
		ErrBadSpec, e.def.Name())
}

func (e *defenseEstimator) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Result, error) {
	reports, err := CollectPM(r, values, e.sp.Eps, adv, gamma, e.sp.OPrime)
	if err != nil {
		return nil, err
	}
	return e.Estimate(context.Background(), &Collection{Groups: [][]float64{reports}})
}

func (e *defenseEstimator) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error) {
	reports, err := CollectPM(r, values, e.sp.Eps, adv, gamma, e.sp.OPrime)
	if err != nil {
		return nil, err
	}
	return &Collection{Groups: [][]float64{reports}}, nil
}
