package core

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/ldp/sw"
	"repro/internal/rng"
	"repro/internal/stats"
)

func values01(seed uint64, n int) ([]float64, float64) {
	r := rng.New(seed)
	vals := make([]float64, n)
	var sum float64
	for i := range vals {
		vals[i] = rng.Beta(r, 2, 5)
		sum += vals[i]
	}
	return vals, sum / float64(n)
}

func TestNewSWDAPValidation(t *testing.T) {
	if _, err := NewSWDAP(SWParams{Eps: 0, Eps0: 1}); err == nil {
		t.Fatal("bad budgets accepted")
	}
}

func TestSWDAPNoAttack(t *testing.T) {
	d, err := NewSWDAP(SWParams{Eps: 1, Eps0: 0.25, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	vals, trueMean := values01(1, 15000)
	est, err := d.Run(rng.New(2), vals, attack.None{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-trueMean) > 0.08 {
		t.Fatalf("clean SW estimate %v, want ~%v", est.Mean, trueMean)
	}
	if len(est.XHat) == 0 {
		t.Fatal("XHat missing")
	}
	if math.Abs(stats.Sum(est.XHat)-1) > 1e-6 {
		t.Fatalf("XHat sums to %v", stats.Sum(est.XHat))
	}
}

func TestSWDAPDefends(t *testing.T) {
	vals, trueMean := values01(3, 15000)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	d, err := NewSWDAP(SWParams{Eps: 1, Eps0: 0.25, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.Run(rng.New(4), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Ostrich for SW: plain EMS including poison, single group.
	mech := sw.MustNew(1)
	r := rng.New(4)
	reports := make([]float64, 0, len(vals))
	env := attack.EnvFor(mech, 0.5)
	nByz := len(vals) / 4
	reports = append(reports, adv.Poison(r, env, nByz)...)
	for _, v := range vals[nByz:] {
		reports = append(reports, mech.Perturb(r, v))
	}
	single := &SWSingle{Eps: 1, IgnorePoison: true}
	xhat, centers, err := single.Reconstruct(reports)
	if err != nil {
		t.Fatal(err)
	}
	ostrich := stats.HistMean(xhat, centers)
	if math.Abs(est.Mean-trueMean) >= math.Abs(ostrich-trueMean) {
		t.Fatalf("SW DAP (%v) should beat Ostrich (%v) vs truth %v", est.Mean, ostrich, trueMean)
	}
	if !est.PoisonedRight {
		t.Fatal("SW side probe failed")
	}
}

func TestSWSingleReconstructsDistribution(t *testing.T) {
	r := rng.New(5)
	mech := sw.MustNew(1)
	vals, _ := values01(6, 20000)
	reports := make([]float64, len(vals))
	for i, v := range vals {
		reports[i] = mech.Perturb(r, v)
	}
	s := &SWSingle{Eps: 1, IgnorePoison: true}
	xhat, centers, err := s.Reconstruct(reports)
	if err != nil {
		t.Fatal(err)
	}
	if len(xhat) != len(centers) {
		t.Fatal("length mismatch")
	}
	// Beta(2,5) has most mass below 0.5.
	var lowMass float64
	for k, c := range centers {
		if c < 0.5 {
			lowMass += xhat[k]
		}
	}
	if lowMass < 0.7 {
		t.Fatalf("reconstructed low mass %v, want > 0.7", lowMass)
	}
	// Wasserstein distance to the true histogram should be small.
	trueHist := stats.Histogram(vals, 0, 1, len(xhat))
	// Reconstructed support differs from [0,1]; compare means instead.
	recMean := stats.HistMean(xhat, centers)
	if math.Abs(recMean-stats.Mean(vals)) > 0.05 {
		t.Fatalf("reconstructed mean %v vs true %v", recMean, stats.Mean(vals))
	}
	_ = trueHist
}

func TestSWSingleSchemes(t *testing.T) {
	r := rng.New(7)
	mech := sw.MustNew(0.5)
	vals, trueMean := values01(8, 15000)
	env := attack.EnvFor(mech, 0.5)
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	nByz := len(vals) / 4
	reports := append([]float64(nil), adv.Poison(r, env, nByz)...)
	for _, v := range vals[nByz:] {
		reports = append(reports, mech.Perturb(r, v))
	}
	for _, scheme := range Schemes() {
		s := &SWSingle{Eps: 0.5, Scheme: scheme}
		xhat, centers, err := s.Reconstruct(reports)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		mean := stats.HistMean(xhat, centers)
		if math.Abs(mean-trueMean) > 0.2 {
			t.Fatalf("%v: reconstructed mean %v vs truth %v", scheme, mean, trueMean)
		}
	}
}
