package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/emf"
	"repro/internal/ldp"
	"repro/internal/ldp/krr"
	"repro/internal/stats"
)

// FreqParams configures the categorical frequency-estimation extension of
// DAP (§V-D, Fig. 9(c)(d)): users hold one of K categories, perturb with
// k-RR, and Byzantine users inject reports directly into chosen
// categories. Poisoned categories are located by recursive side probing
// (Algorithm 3) and their injected mass removed by the usual schemes.
type FreqParams struct {
	Eps  float64
	Eps0 float64
	K    int
	// Scheme selects EMF, EMF* or CEMF*.
	Scheme Scheme
	// SuppressFactor is CEMF*'s threshold factor (0 selects 0.5).
	SuppressFactor float64
	// EMFMaxIter caps EM iterations (0 selects the emf default).
	EMFMaxIter int
	// WeightMode selects the aggregation weights.
	WeightMode WeightMode
}

// FreqDAP is the categorical instantiation of the protocol.
type FreqDAP struct {
	p      FreqParams
	groups []Group
	mechs  []*krr.Mechanism
}

// NewFreqDAP validates parameters and precomputes the group layout.
func NewFreqDAP(p FreqParams) (*FreqDAP, error) {
	if err := validateBudgets(p.Eps, p.Eps0); err != nil {
		return nil, err
	}
	if p.K < 2 {
		return nil, badSpec("categorical protocol needs K >= 2")
	}
	h := groupCount(p.Eps, p.Eps0)
	d := &FreqDAP{p: p, groups: make([]Group, h), mechs: make([]*krr.Mechanism, h)}
	for t := 0; t < h; t++ {
		eps := p.Eps / math.Pow(2, float64(t))
		mech, err := krr.New(eps, p.K)
		if err != nil {
			return nil, fmt.Errorf("core: krr group %d: %w", t, err)
		}
		d.groups[t] = Group{Index: t, Eps: eps, Reports: 1 << t}
		d.mechs[t] = mech
	}
	return d, nil
}

// H returns the group count.
func (d *FreqDAP) H() int { return len(d.groups) }

// Groups returns the group layout.
func (d *FreqDAP) Groups() []Group { return append([]Group(nil), d.groups...) }

// Mechanism returns the k-RR instance of group t.
func (d *FreqDAP) Mechanism(t int) *krr.Mechanism { return d.mechs[t] }

// FreqCollection holds per-group categorical report counts.
type FreqCollection struct {
	// Counts[t][j] is the number of reports of category j in group t.
	Counts [][]float64
	// ByzCount is the simulation ground truth.
	ByzCount int
}

// CollectFreq simulates the user side: normal users k-RR-perturb their
// category once per report slot; Byzantine users report uniformly among
// poisonCats directly (no perturbation — the direct-injection threat of
// Fig. 9(c)(d)). It is the Targeted-adversary special case of
// CollectFreqAdv, kept as the historical entry point; the two produce
// bit-identical collections at equal seeds.
func (d *FreqDAP) CollectFreq(r *rand.Rand, cats []int, poisonCats []int, gamma float64) (*FreqCollection, error) {
	if gamma > 0 && len(poisonCats) == 0 {
		return nil, fmt.Errorf("%w: gamma > 0 requires poison categories", ErrDomain)
	}
	for _, c := range poisonCats {
		if c < 0 || c >= d.p.K {
			return nil, fmt.Errorf("%w: poison category %d out of range", ErrDomain, c)
		}
	}
	var adv attack.Adversary = attack.None{}
	if len(poisonCats) > 0 {
		adv = &attack.Targeted{Cats: poisonCats}
	}
	return d.CollectFreqAdv(r, cats, adv, gamma)
}

// CollectFreqAdv simulates the user side under an arbitrary categorical
// adversary: normal users k-RR-perturb their category once per report
// slot; Byzantine users inject the categories adv emits (as float64 ids
// over the domain [0, K)) directly, no perturbation. Reports outside
// [0, K) or non-integral are rejected with ErrDomain.
func (d *FreqDAP) CollectFreqAdv(r *rand.Rand, cats []int, adv attack.Adversary, gamma float64) (*FreqCollection, error) {
	n := len(cats)
	if n < d.H() {
		return nil, badCollection("fewer users than groups")
	}
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("%w: gamma must lie in [0,1)", ErrDomain)
	}
	if adv == nil {
		adv = attack.None{}
	}
	nByz := int(math.Round(gamma * float64(n)))
	// One shuffle provides both the Byzantine subset (the fixed ids
	// {0..nByz−1}, scattered by the shuffle; their categories are never
	// reported) and the group assignment (contiguous chunks), mirroring
	// DAP.Collect — per-group Byzantine counts stay hypergeometric.
	perm := r.Perm(n)
	h := d.H()
	col := &FreqCollection{Counts: make([][]float64, h), ByzCount: nByz}
	for t := 0; t < h; t++ {
		lo, hi := t*n/h, (t+1)*n/h
		g := d.groups[t]
		mech := d.mechs[t]
		env := attack.Env{Domain: ldp.Domain{Lo: 0, Hi: float64(d.p.K)}, Group: t}
		counts := make([]float64, d.p.K)
		for _, u := range perm[lo:hi] {
			if u < nByz {
				for _, v := range adv.Poison(r, env, g.Reports) {
					c := int(v)
					if v != float64(c) || c < 0 || c >= d.p.K {
						return nil, fmt.Errorf("core: attack %q emitted %g, not a category in [0,%d): %w",
							adv.Name(), v, d.p.K, ErrDomain)
					}
					counts[c]++
				}
			} else {
				for k := 0; k < g.Reports; k++ {
					counts[mech.PerturbCat(r, cats[u])]++
				}
			}
		}
		col.Counts[t] = counts
	}
	return col, nil
}

// FreqEstimate is the collector's categorical output.
type FreqEstimate struct {
	// Freqs is the final normal-user frequency estimate (sums to one).
	Freqs []float64
	// Gamma is the Byzantine proportion probed at the smallest budget.
	Gamma float64
	// PoisonCats is the probed poisoned category set.
	PoisonCats []int
	// GroupFreqs are the per-group frequency estimates.
	GroupFreqs [][]float64
	// Weights are the aggregation weights.
	Weights []float64
	// Solver telemetry: total EM-map evaluations, rejected SQUAREM
	// extrapolations and warm-started runs (category probing excluded from
	// WarmHits — the recursive probe always starts cold).
	EMFIters, EMFRestarts, WarmHits int
	// Converged reports whether every solver run met its tolerance.
	Converged bool
	// Warm carries the per-group fits for seeding the next estimate.
	Warm *WarmState
}

// EstimateFreq runs the collector side.
func (d *FreqDAP) EstimateFreq(col *FreqCollection) (*FreqEstimate, error) {
	return d.EstimateFreqWarm(col, nil)
}

// EstimateFreqWarm is EstimateFreq with the per-group solver runs seeded
// from a previous estimate's fits (tolerance-equivalent; see WarmState).
// The recursive category probe always runs cold: its poison sets shrink
// as the recursion descends, so no previous fit matches them reliably.
func (d *FreqDAP) EstimateFreqWarm(col *FreqCollection, warm *WarmState) (*FreqEstimate, error) {
	h := d.H()
	if col == nil || len(col.Counts) != h {
		return nil, badCollection("collection does not match group layout")
	}
	matrices := make([]*emf.Matrix, h)
	for t := 0; t < h; t++ {
		if len(col.Counts[t]) != d.p.K {
			return nil, badCollection("group %d counts have wrong arity", t)
		}
		matrices[t] = emf.BuildCategoricalCached(d.mechs[t])
	}
	// Probe poisoned categories and γ̂ at the smallest budget.
	probeSet, probeRes, err := emf.ProbeCategories(matrices[h-1], col.Counts[h-1], d.cfg(h-1))
	if err != nil {
		return nil, err
	}
	gammaGlobal := probeRes.Gamma()

	est := &FreqEstimate{
		Gamma:      gammaGlobal,
		PoisonCats: probeSet,
		GroupFreqs: make([][]float64, h),
	}
	var diag emfDiag
	diag.observe(probeRes)
	b := make([]float64, h)
	nHat := make([]float64, h)
	bases := make([]*emf.Result, h)
	finals := make([]*emf.Result, h)
	diags := make([]emfDiag, h)
	// The per-group EM fits are independent; run them concurrently (each
	// writes only its own index, so the output is order-independent).
	if err := forEachGroup(h, func(t int) (err error) {
		m := matrices[t]
		cfg := d.cfg(t)
		wBase, wFinal := warm.base(t), warm.final(t)
		if t == h-1 {
			// The category probe just fitted this group with the chosen
			// poison set — the freshest possible seed.
			wBase = probeRes
			if wFinal == nil {
				wFinal = probeRes
			}
		}
		var res, base *emf.Result
		var gammaT float64
		switch d.p.Scheme {
		case SchemeEMFStar:
			// The unconstrained base fit is unused under EMF*; skip it.
			cfg.Init = wFinal
			if res, err = emf.RunConstrained(m, col.Counts[t], probeSet, gammaGlobal, cfg); err != nil {
				return err
			}
			gammaT = gammaGlobal
		case SchemeCEMFStar:
			factor := d.p.SuppressFactor
			if factor <= 0 {
				factor = 0.5
			}
			cfg.Init = wBase
			if base, err = emf.Run(m, col.Counts[t], probeSet, cfg); err != nil {
				return err
			}
			if res, err = emf.RunConcentrated(m, col.Counts[t], base, gammaGlobal, factor, d.cfg(t)); err != nil {
				return err
			}
			gammaT = res.Gamma()
		default:
			cfg.Init = wBase
			if base, err = emf.Run(m, col.Counts[t], probeSet, cfg); err != nil {
				return err
			}
			res = base
			gammaT = base.Gamma()
		}
		bases[t], finals[t] = base, res
		diags[t].observe(res)
		if base != nil && base != res {
			diags[t].observe(base)
		}
		est.GroupFreqs[t] = stats.Normalize(res.X)
		nt := stats.Sum(col.Counts[t])
		mHat := gammaT * nt
		if mHat > 0.95*nt {
			mHat = 0.95 * nt
		}
		nHat[t] = (nt - mHat) * d.groups[t].Eps / d.p.Eps
		b[t] = nHat[t] * d.mechs[t].WorstCaseVar()
		return nil
	}); err != nil {
		return nil, err
	}
	for t := range diags {
		diag.merge(diags[t])
	}
	est.EMFIters, est.EMFRestarts, est.WarmHits = diag.iters, diag.restarts, diag.warmHits
	est.Converged = !diag.diverged
	est.Warm = &WarmState{bases: bases, finals: finals}
	w, err := OptimalWeights(b, nHat, d.p.WeightMode)
	if err != nil {
		return nil, err
	}
	est.Weights = w
	freqs := make([]float64, d.p.K)
	for t := 0; t < h; t++ {
		for j := range freqs {
			freqs[j] += w[t] * est.GroupFreqs[t][j]
		}
	}
	est.Freqs = stats.Normalize(freqs)
	return est, nil
}

// Run is CollectFreq followed by EstimateFreq — the simulation entry
// point, named identically across all protocol variants.
func (d *FreqDAP) Run(r *rand.Rand, cats []int, poisonCats []int, gamma float64) (*FreqEstimate, error) {
	col, err := d.CollectFreq(r, cats, poisonCats, gamma)
	if err != nil {
		return nil, err
	}
	return d.EstimateFreq(col)
}

// RunAdv is CollectFreqAdv followed by EstimateFreq — the simulation
// entry point for registry-selected categorical adversaries.
func (d *FreqDAP) RunAdv(r *rand.Rand, cats []int, adv attack.Adversary, gamma float64) (*FreqEstimate, error) {
	col, err := d.CollectFreqAdv(r, cats, adv, gamma)
	if err != nil {
		return nil, err
	}
	return d.EstimateFreq(col)
}

// RunFreq is the historical name of Run.
//
// Deprecated: use Run.
func (d *FreqDAP) RunFreq(r *rand.Rand, cats []int, poisonCats []int, gamma float64) (*FreqEstimate, error) {
	return d.Run(r, cats, poisonCats, gamma)
}

// OstrichFreq estimates frequencies ignoring Byzantine users: per-group
// unbiased k-RR estimation aggregated with the same weights.
func (d *FreqDAP) OstrichFreq(col *FreqCollection) ([]float64, error) {
	h := d.H()
	if col == nil || len(col.Counts) != h {
		return nil, badCollection("collection does not match group layout")
	}
	b := make([]float64, h)
	nHat := make([]float64, h)
	ests := make([][]float64, h)
	for t := 0; t < h; t++ {
		ests[t] = d.mechs[t].EstimateFreq(col.Counts[t])
		nt := stats.Sum(col.Counts[t])
		nHat[t] = nt * d.groups[t].Eps / d.p.Eps
		b[t] = nHat[t] * d.mechs[t].WorstCaseVar()
	}
	w, err := OptimalWeights(b, nHat, d.p.WeightMode)
	if err != nil {
		return nil, err
	}
	freqs := make([]float64, d.p.K)
	for t := 0; t < h; t++ {
		for j := range freqs {
			f := ests[t][j]
			if f < 0 {
				f = 0
			}
			freqs[j] += w[t] * f
		}
	}
	return stats.Normalize(freqs), nil
}

func (d *FreqDAP) cfg(t int) emf.Config {
	return emf.Config{Tol: emf.PaperTol(d.groups[t].Eps), MaxIter: d.p.EMFMaxIter, Accelerate: true}
}
