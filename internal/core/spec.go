package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/defense"
)

// Typed error taxonomy of the task-spec API. Every spec rejection wraps
// ErrBadSpec; every out-of-domain value wraps ErrDomain — callers branch
// with errors.Is instead of string matching. (Budget exhaustion keeps its
// existing sentinel, privacy.ErrBudgetExceeded, re-exported by the root
// package as ErrBudgetExhausted.)
var (
	// ErrBadSpec marks a task spec that fails validation: unknown task,
	// scheme, weights, window or defense name, or inconsistent parameters.
	ErrBadSpec = errors.New("core: bad task spec")
	// ErrDomain marks a value outside the domain a spec or mechanism
	// prescribes.
	ErrDomain = errors.New("core: value outside domain")
	// ErrBadCollection marks a collection whose shape does not match the
	// spec that built it: wrong group count, missing histograms or sums,
	// empty groups, mismatched arities.
	ErrBadCollection = errors.New("core: bad collection shape")
)

// badSpec builds an error wrapping ErrBadSpec.
func badSpec(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// badCollection builds an error wrapping ErrBadCollection.
func badCollection(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadCollection, fmt.Sprintf(format, args...))
}

// TaskKind names what a task estimates. Kinds marshal as their string
// value, so specs read naturally on the wire and on disk.
type TaskKind string

// Task kinds.
const (
	// TaskMean estimates the mean of values in [−1,1] over the Piecewise
	// Mechanism (§V).
	TaskMean TaskKind = "mean"
	// TaskDistribution estimates the distribution (and mean) of values in
	// [0,1] over Square Wave (§V-D).
	TaskDistribution TaskKind = "distribution"
	// TaskFrequency estimates category frequencies over k-RR (§V-D).
	TaskFrequency TaskKind = "frequency"
	// TaskVariance estimates the variance of values in [−1,1] by splitting
	// the population across two mean protocols (§V-D).
	TaskVariance TaskKind = "variance"
	// TaskBaseline is the §IV two-budget protocol.
	TaskBaseline TaskKind = "baseline"
)

// Tasks lists the task kinds in paper order.
func Tasks() []TaskKind {
	return []TaskKind{TaskMean, TaskDistribution, TaskFrequency, TaskVariance, TaskBaseline}
}

// ParseTask parses a task kind name, accepting the serving layer's
// historical aliases ("freq", "dist", and the mechanism names "pm", "sw",
// "krr"). Empty selects TaskMean.
func ParseTask(s string) (TaskKind, error) {
	switch strings.ToLower(s) {
	case "", "mean", "pm":
		return TaskMean, nil
	case "dist", "distribution", "sw":
		return TaskDistribution, nil
	case "freq", "frequency", "krr":
		return TaskFrequency, nil
	case "var", "variance":
		return TaskVariance, nil
	case "baseline":
		return TaskBaseline, nil
	}
	return "", badSpec("unknown task %q", s)
}

// String implements fmt.Stringer.
func (k TaskKind) String() string { return string(k) }

// DomainSpec declares the raw-value domain of the quantity being
// estimated, making unit conversion part of the task description instead
// of ad-hoc caller code: protocols run on their native unit domain, and
// Spec.FromUnit/ToUnit translate results back to these units.
type DomainSpec struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// ServeSpec carries the serving-layer parameters of a task — how a stream
// tenant hosting this spec shards, buckets and windows its histograms.
// Batch estimation ignores it. Zero values select the engine defaults.
type ServeSpec struct {
	// Buckets fixes one output histogram resolution d′ for every group;
	// zero derives per-group resolutions from ExpectedUsers.
	Buckets int `json:"buckets,omitempty"`
	// ExpectedUsers is the anticipated user population per window.
	ExpectedUsers int `json:"expected_users,omitempty"`
	// Shards is the number of lock stripes per group histogram.
	Shards int `json:"shards,omitempty"`
	// Window selects the epoch window shape: "tumbling" (default) or
	// "sliding".
	Window string `json:"window,omitempty"`
	// Span is the sliding window length in epochs.
	Span int `json:"span,omitempty"`
	// EpochMs is the epoch length in milliseconds driving automatic
	// rotation; zero means manual rotation only.
	EpochMs int64 `json:"epoch_ms,omitempty"`
	// Warm seeds each epoch re-estimation from the previous rotation's EM
	// fits (solver warm start). Off, every estimate is bit-identical to
	// batch estimation over the same histograms; on, estimates are
	// tolerance-equivalent (same fixed point within the EM termination
	// rule) and epoch re-estimation latency drops substantially.
	Warm bool `json:"warm,omitempty"`
	// Wire is the preferred ingest wire clients of this tenant should use:
	// "json" (default; JSON over HTTP), "bin" (binary frames over HTTP,
	// lossless) or "udp" (binary frames over UDP, best-effort). All three
	// wires are always served; this field is advisory routing for clients
	// such as daploadgen.
	Wire string `json:"wire,omitempty"`
	// UDPAddr is the UDP listen address for the binary ingest socket
	// (e.g. ":9200"); empty leaves UDP ingest closed unless the collector
	// is started with an explicit -udp flag.
	UDPAddr string `json:"udp_addr,omitempty"`
}

// Spec is the declarative, JSON-serializable description of one
// aggregation task. The same spec drives batch estimation (Build), a
// stream tenant (stream.ConfigFromSpec), the wire API (tenant CRUD
// accepts and returns it) and the CLIs (-spec file.json). Construct specs
// with NewSpec and functional options, or unmarshal them from JSON;
// Validate (called by Build) rejects malformed specs with ErrBadSpec.
type Spec struct {
	// Task selects what is estimated.
	Task TaskKind `json:"task"`
	// Mechanism names the LDP mechanism ("pm", "sw", "krr"). Empty selects
	// the task's native mechanism; naming any other combination is
	// rejected, keeping the field explicit for future backends.
	Mechanism string `json:"mechanism,omitempty"`
	// Scheme selects EMF, EMF* or CEMF* estimation (names as accepted by
	// ParseScheme; empty selects CEMF*).
	Scheme string `json:"scheme,omitempty"`
	// Weights selects the inter-group aggregation weights ("paper" or
	// "general"; empty selects paper).
	Weights string `json:"weights,omitempty"`
	// Eps and Eps0 are the total per-user budget ε and the minimal group
	// budget ε₀ (Eps0 zero selects Eps/16, the paper's ratio at ε=1).
	Eps  float64 `json:"eps"`
	Eps0 float64 `json:"eps0,omitempty"`
	// K is the category count (TaskFrequency).
	K int `json:"k,omitempty"`
	// EpsAlpha and EpsBeta split ε for TaskBaseline (zero selects the
	// ε/8 : 7ε/8 split).
	EpsAlpha float64 `json:"eps_alpha,omitempty"`
	EpsBeta  float64 `json:"eps_beta,omitempty"`
	// OPrime, AutoOPrime and GammaSup configure the pessimistic mean
	// initialization (TaskMean, TaskBaseline).
	OPrime     float64 `json:"oprime,omitempty"`
	AutoOPrime bool    `json:"auto_oprime,omitempty"`
	GammaSup   float64 `json:"gamma_sup,omitempty"`
	// SuppressFactor is CEMF*'s concentration threshold factor (zero
	// selects 0.5).
	SuppressFactor float64 `json:"suppress_factor,omitempty"`
	// EMFMaxIter caps EM iterations per fit (zero selects the emf
	// default).
	EMFMaxIter int `json:"emf_max_iter,omitempty"`
	// TrimFrac is the SW pessimistic-O′ trim fraction (TaskDistribution).
	TrimFrac float64 `json:"trim_frac,omitempty"`
	// Domain optionally declares the raw-value units of the estimated
	// quantity (see DomainSpec).
	Domain *DomainSpec `json:"domain,omitempty"`
	// Defense replaces the DAP protocol with a comparator defense over a
	// single-group collection at budget Eps (TaskMean only).
	Defense *defense.Spec `json:"defense,omitempty"`
	// Attack names the simulated adversary for the spec's simulation faces
	// (dapsim, dapbench -spec, the red-team matrix, daploadgen's client
	// mix), selected from the attack registry (attack.New). Like the other
	// simulation-only faces it never crosses the wire: stream tenants and
	// the collector reject specs that carry it.
	Attack *attack.Spec `json:"attack,omitempty"`
	// Serve carries the serving-layer parameters for stream tenants.
	Serve *ServeSpec `json:"serve,omitempty"`
}

// Option mutates a Spec under construction.
type Option func(*Spec)

// NewSpec builds a Spec from a task selector (MeanTask, DistributionTask,
// FrequencyTask, VarianceTask, BaselineTask) and options. The zero budget defaults to
// the paper's ε=1, ε₀=1/16.
func NewSpec(task Option, opts ...Option) Spec {
	sp := Spec{Eps: 1}
	task(&sp)
	for _, o := range opts {
		o(&sp)
	}
	return sp
}

// MeanTask selects mean estimation over PM.
func MeanTask() Option { return func(sp *Spec) { sp.Task = TaskMean } }

// DistributionTask selects distribution estimation over SW.
func DistributionTask() Option { return func(sp *Spec) { sp.Task = TaskDistribution } }

// FrequencyTask selects categorical frequency estimation over k-RR with k
// categories.
func FrequencyTask(k int) Option {
	return func(sp *Spec) { sp.Task = TaskFrequency; sp.K = k }
}

// VarianceTask selects variance estimation (two mean protocols over split
// populations).
func VarianceTask() Option { return func(sp *Spec) { sp.Task = TaskVariance } }

// BaselineTask selects the §IV two-budget protocol with probing budget
// epsAlpha and estimation budget epsBeta.
func BaselineTask(epsAlpha, epsBeta float64) Option {
	return func(sp *Spec) {
		sp.Task = TaskBaseline
		sp.EpsAlpha, sp.EpsBeta = epsAlpha, epsBeta
		sp.Eps = epsAlpha + epsBeta
	}
}

// WithBudget sets the total budget ε and minimal group budget ε₀.
func WithBudget(eps, eps0 float64) Option {
	return func(sp *Spec) { sp.Eps, sp.Eps0 = eps, eps0 }
}

// WithScheme selects the estimation scheme.
func WithScheme(s Scheme) Option {
	return func(sp *Spec) { sp.Scheme = s.String() }
}

// WithWeights selects the inter-group aggregation weights.
func WithWeights(m WeightMode) Option {
	return func(sp *Spec) { sp.Weights = m.String() }
}

// WithDomain declares the raw-value domain [lo, hi] of the estimated
// quantity.
func WithDomain(lo, hi float64) Option {
	return func(sp *Spec) { sp.Domain = &DomainSpec{Lo: lo, Hi: hi} }
}

// WithDefense replaces the protocol with the named comparator defense.
func WithDefense(d defense.Spec) Option {
	return func(sp *Spec) { sp.Defense = &d }
}

// WithAttack names the simulated adversary driving the spec's simulation
// faces (see Spec.Attack).
func WithAttack(a attack.Spec) Option {
	return func(sp *Spec) { sp.Attack = &a }
}

// WithOPrime fixes the pessimistic mean initialization O′.
func WithOPrime(o float64) Option { return func(sp *Spec) { sp.OPrime = o } }

// WithAutoOPrime derives O′ per Theorem 2 with the given γ upper bound
// (zero selects the threat model's 1/2).
func WithAutoOPrime(gammaSup float64) Option {
	return func(sp *Spec) { sp.AutoOPrime = true; sp.GammaSup = gammaSup }
}

// WithSuppressFactor sets CEMF*'s concentration threshold factor.
func WithSuppressFactor(f float64) Option {
	return func(sp *Spec) { sp.SuppressFactor = f }
}

// WithEMFMaxIter caps EM iterations per fit.
func WithEMFMaxIter(n int) Option { return func(sp *Spec) { sp.EMFMaxIter = n } }

// WithTrimFrac sets the SW pessimistic-O′ trim fraction.
func WithTrimFrac(f float64) Option { return func(sp *Spec) { sp.TrimFrac = f } }

// WithServe attaches serving-layer parameters for stream tenants.
func WithServe(s ServeSpec) Option {
	return func(sp *Spec) { sp.Serve = &s }
}

// nativeMechanism returns the mechanism each task runs on.
func (k TaskKind) nativeMechanism() string {
	switch k {
	case TaskDistribution:
		return "sw"
	case TaskFrequency:
		return "krr"
	default:
		return "pm"
	}
}

// validWindowMode accepts the window-shape names a ServeSpec may carry;
// the serving layer's ParseWindowMode is the authority for their meaning.
func validWindowMode(s string) bool {
	switch strings.ToLower(s) {
	case "", "tumbling", "fixed", "sliding":
		return true
	}
	return false
}

// Normalize fills the spec's defaulted fields (mechanism, scheme, weights,
// ε₀, the baseline split) and returns the effective spec. It does not
// validate; Build and Validate call it internally.
func (sp Spec) Normalize() Spec {
	if sp.Task == "" {
		sp.Task = TaskMean
	}
	if k, err := ParseTask(string(sp.Task)); err == nil {
		sp.Task = k
	}
	sp.Mechanism = strings.ToLower(sp.Mechanism)
	if sp.Mechanism == "" {
		sp.Mechanism = sp.Task.nativeMechanism()
	}
	// Canonicalize the scheme and weight names so normalized specs compare
	// and round-trip stably ("" and "cemfstar" both become "CEMF*").
	if s, err := ParseScheme(sp.Scheme); err == nil {
		sp.Scheme = s.String()
	}
	if w, err := ParseWeightMode(sp.Weights); err == nil {
		sp.Weights = w.String()
	}
	if sp.Task == TaskBaseline {
		if sp.EpsAlpha == 0 && sp.EpsBeta == 0 && sp.Eps > 0 {
			sp.EpsAlpha, sp.EpsBeta = sp.Eps/8, sp.Eps*7/8
		}
		if sp.Eps == 0 {
			sp.Eps = sp.EpsAlpha + sp.EpsBeta
		}
	} else if sp.Eps0 == 0 {
		sp.Eps0 = sp.Eps / 16
	}
	return sp
}

// Validate rejects malformed specs. Every rejection wraps ErrBadSpec
// (domain problems additionally wrap ErrDomain).
func (sp Spec) Validate() error {
	sp = sp.Normalize()
	if _, err := ParseTask(string(sp.Task)); err != nil {
		return err
	}
	if sp.Mechanism != sp.Task.nativeMechanism() {
		return badSpec("mechanism %q is not supported for task %q (want %q)",
			sp.Mechanism, sp.Task, sp.Task.nativeMechanism())
	}
	if _, err := ParseScheme(sp.Scheme); err != nil {
		return badSpec("%v", err)
	}
	if _, err := ParseWeightMode(sp.Weights); err != nil {
		return badSpec("%v", err)
	}
	switch sp.Task {
	case TaskBaseline:
		if sp.EpsAlpha <= 0 || sp.EpsBeta <= 0 || sp.EpsAlpha >= sp.EpsBeta {
			return badSpec("baseline budgets must satisfy 0 < eps_alpha < eps_beta (got α=%g, β=%g)",
				sp.EpsAlpha, sp.EpsBeta)
		}
	default:
		if err := validateBudgets(sp.Eps, sp.Eps0); err != nil {
			return badSpec("%v", err)
		}
	}
	if sp.Task == TaskFrequency && sp.K < 2 {
		return badSpec("frequency estimation needs k >= 2 (got %d)", sp.K)
	}
	if sp.Defense != nil {
		if sp.Task != TaskMean {
			return badSpec("defenses apply to task %q only (got %q)", TaskMean, sp.Task)
		}
		if _, err := defense.New(*sp.Defense); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		switch sp.Defense.Side {
		case "", "left", "right":
		default:
			return badSpec("unknown defense side %q (want left or right)", sp.Defense.Side)
		}
	}
	if a := sp.Attack; a != nil {
		if _, err := attack.New(*a); err != nil {
			// %w on both: callers branch on ErrBadSpec or attack.ErrUnknown.
			return fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		// "none" fits every task; otherwise categorical attacks pair with
		// the frequency task and numeric attacks with everything else.
		if !strings.EqualFold(a.Name, "none") && a.Categorical() != (sp.Task == TaskFrequency) {
			if a.Categorical() {
				return badSpec("attack %q injects categories and applies to task %q only (got %q)",
					a.Name, TaskFrequency, sp.Task)
			}
			return badSpec("attack %q injects numeric reports and cannot drive task %q (use a categorical attack such as targeted or maxgain)",
				a.Name, sp.Task)
		}
	}
	if d := sp.Domain; d != nil {
		if math.IsNaN(d.Lo) || math.IsNaN(d.Hi) || math.IsInf(d.Lo, 0) || math.IsInf(d.Hi, 0) || d.Lo >= d.Hi {
			return fmt.Errorf("%w: domain [%g, %g] is empty or non-finite: %w",
				ErrBadSpec, d.Lo, d.Hi, ErrDomain)
		}
	}
	if s := sp.Serve; s != nil {
		if s.Buckets < 0 || s.ExpectedUsers < 0 || s.Shards < 0 || s.Span < 0 || s.EpochMs < 0 {
			return badSpec("serve parameters must be non-negative")
		}
		if !validWindowMode(s.Window) {
			return badSpec("unknown window mode %q", s.Window)
		}
		switch strings.ToLower(s.Wire) {
		case "", "json", "bin", "udp":
		default:
			return badSpec("unknown wire %q (want json, bin or udp)", s.Wire)
		}
	}
	if sp.TrimFrac < 0 || sp.TrimFrac >= 1 {
		return badSpec("trim_frac %g outside [0,1)", sp.TrimFrac)
	}
	if sp.SuppressFactor < 0 {
		return badSpec("suppress_factor must be non-negative")
	}
	if sp.GammaSup < 0 || sp.GammaSup >= 1 {
		return badSpec("gamma_sup %g outside [0,1)", sp.GammaSup)
	}
	if sp.EMFMaxIter < 0 {
		return badSpec("emf_max_iter must be non-negative")
	}
	return nil
}

// unitDomain returns the protocol's native input domain for the task.
func (sp Spec) unitDomain() (lo, hi float64) {
	if sp.Task == TaskDistribution {
		return 0, 1
	}
	return -1, 1
}

// ToUnit maps a raw value from the declared Domain into the protocol's
// native input domain ([−1,1] for mean/variance, [0,1] for
// distribution). Without a Domain it returns v unchanged.
func (sp Spec) ToUnit(v float64) float64 {
	if sp.Domain == nil {
		return v
	}
	lo, hi := sp.unitDomain()
	return lo + (hi-lo)*(v-sp.Domain.Lo)/(sp.Domain.Hi-sp.Domain.Lo)
}

// FromUnit maps a protocol-domain value back into the declared Domain's
// units. Without a Domain it returns v unchanged.
func (sp Spec) FromUnit(v float64) float64 {
	if sp.Domain == nil {
		return v
	}
	lo, hi := sp.unitDomain()
	return sp.Domain.Lo + (sp.Domain.Hi-sp.Domain.Lo)*(v-lo)/(hi-lo)
}

// Adversary builds the spec's simulated adversary from the attack
// registry, or nil when the spec carries no attack section (callers keep
// their own default). Build errors wrap ErrBadSpec.
func (sp Spec) Adversary() (attack.Adversary, error) {
	if sp.Attack == nil {
		return nil, nil
	}
	adv, err := attack.New(*sp.Attack)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return adv, nil
}

// MarshalJSONIndent renders the spec as the canonical indented JSON used
// by the specs/ directory and the CLIs.
func (sp Spec) MarshalJSONIndent() ([]byte, error) {
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseSpec decodes a JSON spec strictly: unknown fields are rejected
// (wrapping ErrBadSpec), so typos in spec files fail loudly instead of
// silently selecting defaults. The decoded spec is validated.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// LoadSpec reads and parses a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	sp, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}
