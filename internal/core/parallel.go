package core

import "sync"

// forEachGroup runs f(0..h-1) on one goroutine per group and returns the
// first (lowest-index) error. Per-group work writes only to index-t slots,
// so the fan-out is deterministic: the collector side produces bit-identical
// estimates whether groups run sequentially or in parallel. h is the group
// count (≤ ⌈log₂(ε/ε₀)⌉+1, i.e. single digits), so goroutine overhead is
// negligible next to one EM fit.
func forEachGroup(h int, f func(t int) error) error {
	if h == 1 {
		return f(0)
	}
	errs := make([]error, h)
	var wg sync.WaitGroup
	wg.Add(h)
	for t := 0; t < h; t++ {
		go func(t int) {
			defer wg.Done()
			errs[t] = f(t)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
