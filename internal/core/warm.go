package core

import (
	"context"

	"repro/internal/emf"
)

// WarmState carries the EM fits of one completed estimate so a subsequent
// estimate over the same group layout can seed its solver runs from them
// (emf.Config.Init) instead of the uniform Algorithm 2 initialization.
// The streaming engine threads it across epoch rotations; the bench
// harness threads it across γ-grid neighbours. The state is opaque: fits
// are matched to runs by position, and every seed is shape-checked by the
// solver, so a WarmState from a different layout (or a nil one) simply
// degrades to a cold start. Warm-started estimates are
// tolerance-equivalent to cold ones — the same fixed point within the Tol
// rule — not bit-identical.
type WarmState struct {
	// probeL and probeR seed the smallest-budget side probes.
	probeL, probeR *emf.Result
	// oFit seeds the SW pessimistic-O′ EMS fit.
	oFit *emf.Result
	// bases and finals seed, per group, the plain-EMF base fit and the
	// scheme's final fit (constrained/concentrated).
	bases, finals []*emf.Result
	// sub holds the states of composite estimators (the two halves of
	// variance estimation).
	sub []*WarmState
}

// base returns the group-t base-fit seed, nil-safe. When the previous
// estimate skipped the base run (EMF*), its final constrained fit stands
// in — still a far better seed than the uniform start.
func (w *WarmState) base(t int) *emf.Result {
	if w == nil {
		return nil
	}
	if t < len(w.bases) && w.bases[t] != nil {
		return w.bases[t]
	}
	return w.final(t)
}

// final returns the group-t final-fit seed, nil-safe.
func (w *WarmState) final(t int) *emf.Result {
	if w == nil || t >= len(w.finals) {
		return nil
	}
	return w.finals[t]
}

// probeLeft and probeRight return the side-probe seeds, nil-safe.
func (w *WarmState) probeLeft() *emf.Result {
	if w == nil {
		return nil
	}
	return w.probeL
}

func (w *WarmState) probeRight() *emf.Result {
	if w == nil {
		return nil
	}
	return w.probeR
}

// oSeed returns the pessimistic-O′ fit seed, nil-safe.
func (w *WarmState) oSeed() *emf.Result {
	if w == nil {
		return nil
	}
	return w.oFit
}

// subState returns the i-th composite sub-state, nil-safe.
func (w *WarmState) subState(i int) *WarmState {
	if w == nil || i >= len(w.sub) {
		return nil
	}
	return w.sub[i]
}

// warmCtxKey keys the warm state in a context.
type warmCtxKey struct{}

// WithWarm attaches a warm state to ctx. Estimators built by Build read
// it in Estimate/EstimateHist and return the successor state in
// Result.Warm; passing the previous call's state forward turns a sequence
// of estimates over the same layout (stream epochs, γ-grid sweeps) into a
// warm-started chain. A nil state leaves ctx unchanged.
func WithWarm(ctx context.Context, ws *WarmState) context.Context {
	if ws == nil {
		return ctx
	}
	return context.WithValue(ctx, warmCtxKey{}, ws)
}

// WarmFromContext extracts the warm state attached by WithWarm, nil when
// absent.
func WarmFromContext(ctx context.Context) *WarmState {
	if ctx == nil {
		return nil
	}
	ws, _ := ctx.Value(warmCtxKey{}).(*WarmState)
	return ws
}

// emfDiag accumulates solver telemetry across the EM fits of one
// estimate.
type emfDiag struct {
	iters, restarts, warmHits int
	diverged                  bool
}

// observe folds the diagnostics of the given fits (nils skipped).
func (d *emfDiag) observe(rs ...*emf.Result) {
	for _, r := range rs {
		if r == nil {
			continue
		}
		d.iters += r.Iters
		d.restarts += r.Restarts
		if r.Warm {
			d.warmHits++
		}
		if !r.Converged {
			d.diverged = true
		}
	}
}

// merge folds another accumulator (per-group accumulators reduced after a
// concurrent fan-out).
func (d *emfDiag) merge(o emfDiag) {
	d.iters += o.iters
	d.restarts += o.restarts
	d.warmHits += o.warmHits
	d.diverged = d.diverged || o.diverged
}

// apply writes the accumulated telemetry into an estimate.
func (d *emfDiag) apply(e *Estimate) {
	e.EMFIters = d.iters
	e.EMFRestarts = d.restarts
	e.WarmHits = d.warmHits
	e.Converged = !d.diverged
}
