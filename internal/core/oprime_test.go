package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestPessimisticOBelowTruthRightPoison(t *testing.T) {
	// Theorem 2: with right-side poison, O′ must not exceed the clean mean.
	r := rng.New(1)
	clean := make([]float64, 8000)
	for i := range clean {
		clean[i] = rng.Uniform(r, -1, 1)
	}
	reports := append([]float64(nil), clean...)
	for i := 0; i < 2000; i++ {
		reports = append(reports, rng.Uniform(r, 2, 3)) // poison
	}
	oPrime := PessimisticO(reports, 0.5, true)
	if oPrime > stats.Mean(clean) {
		t.Fatalf("O′ = %v above clean mean %v", oPrime, stats.Mean(clean))
	}
}

func TestPessimisticOAboveTruthLeftPoison(t *testing.T) {
	r := rng.New(2)
	clean := make([]float64, 8000)
	for i := range clean {
		clean[i] = rng.Uniform(r, -1, 1)
	}
	reports := append([]float64(nil), clean...)
	for i := 0; i < 2000; i++ {
		reports = append(reports, rng.Uniform(r, -3, -2))
	}
	oPrime := PessimisticO(reports, 0.5, false)
	if oPrime < stats.Mean(clean) {
		t.Fatalf("O′ = %v below clean mean %v", oPrime, stats.Mean(clean))
	}
}

func TestPessimisticODefaults(t *testing.T) {
	if got := PessimisticO(nil, 0.5, true); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// gammaSup=0 defaults to 1/2; gammaSup>=1 is clamped — both must not panic.
	reports := []float64{1, 2, 3, 4}
	_ = PessimisticO(reports, 0, true)
	_ = PessimisticO(reports, 5, true)
}

// Property (Theorem 2): O′ with right-side trimming never exceeds the raw
// report mean.
func TestPessimisticOProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		reports := make([]float64, 200)
		for i := range reports {
			reports[i] = rng.Uniform(r, -5, 5)
		}
		return PessimisticO(reports, 0.5, true) <= stats.Mean(reports)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
