package core

import (
	"math"
	"testing"
)

func TestZScoreKnownValues(t *testing.T) {
	// Standard two-sided z-scores.
	cases := map[float64]float64{
		0.6827: 1.0,
		0.9545: 2.0,
		0.95:   1.9600,
		0.99:   2.5758,
	}
	for level, want := range cases {
		if got := zScore(level); math.Abs(got-want) > 0.001 {
			t.Fatalf("zScore(%v) = %v, want %v", level, got, want)
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	e := &Estimate{Mean: 0.2, VarMin: 0.0004} // sd = 0.02
	lo, hi := e.ConfidenceInterval(0.9545)
	if math.Abs(lo-(0.2-0.04)) > 1e-3 || math.Abs(hi-(0.2+0.04)) > 1e-3 {
		t.Fatalf("CI = [%v, %v], want [0.16, 0.24]", lo, hi)
	}
	// Degenerate inputs collapse to the point estimate.
	if lo, hi := e.ConfidenceInterval(0); lo != 0.2 || hi != 0.2 {
		t.Fatalf("level=0 CI = [%v, %v]", lo, hi)
	}
	zeroVar := &Estimate{Mean: 0.1}
	if lo, hi := zeroVar.ConfidenceInterval(0.95); lo != 0.1 || hi != 0.1 {
		t.Fatalf("VarMin=0 CI = [%v, %v]", lo, hi)
	}
}

func TestConfidenceIntervalWidensWithLevel(t *testing.T) {
	e := &Estimate{Mean: 0, VarMin: 1}
	lo90, hi90 := e.ConfidenceInterval(0.90)
	lo99, hi99 := e.ConfidenceInterval(0.99)
	if hi99-lo99 <= hi90-lo90 {
		t.Fatal("99% interval should be wider than 90%")
	}
}
