package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/stats"
)

// Params configures a DAP instance (§V).
type Params struct {
	// Eps is the total per-user privacy budget ε.
	Eps float64
	// Eps0 is the minimal acceptable group budget ε₀ (the paper uses 1/16).
	Eps0 float64
	// Scheme selects EMF, EMF* or CEMF* intra-group estimation.
	Scheme Scheme
	// OPrime is the pessimistic mean initialization O′ (§IV-A; default 0).
	OPrime float64
	// AutoOPrime derives O′ from the collected reports per Theorem 2
	// (trimmed pessimistic mean at the smallest budget) instead of using
	// the fixed OPrime.
	AutoOPrime bool
	// GammaSup is the Byzantine-proportion upper bound used by the
	// Theorem 2 initialization (0 selects the threat model's 1/2).
	GammaSup float64
	// SuppressFactor is CEMF*'s concentration threshold factor; the
	// threshold is SuppressFactor·γ̂/|P| (the paper uses 0.5; 0 selects it).
	SuppressFactor float64
	// EMFMaxIter caps EM iterations per group (0 selects the emf default).
	EMFMaxIter int
	// WeightMode selects Algorithm 5's literal weights (default) or the
	// general minimum-variance weights.
	WeightMode WeightMode
}

func (p *Params) suppressFactor() float64 {
	if p.SuppressFactor > 0 {
		return p.SuppressFactor
	}
	return 0.5
}

// Group describes one DAP group (§V-A).
type Group struct {
	// Index is the group position t−1 (0-based); budgets halve as it grows.
	Index int
	// Eps is the group budget ε_t = ε/2^Index.
	Eps float64
	// Reports is how many times each member perturbs and reports,
	// ε/ε_t = 2^Index, so every user spends exactly ε in total.
	Reports int
}

// DAP is a Differential Aggregation Protocol instance for mean estimation
// over the Piecewise Mechanism.
type DAP struct {
	p      Params
	groups []Group
	mechs  []*pm.Mechanism
}

// NewDAP validates parameters and precomputes the group layout.
func NewDAP(p Params) (*DAP, error) {
	if err := validateBudgets(p.Eps, p.Eps0); err != nil {
		return nil, err
	}
	h := groupCount(p.Eps, p.Eps0)
	d := &DAP{p: p, groups: make([]Group, h), mechs: make([]*pm.Mechanism, h)}
	for t := 0; t < h; t++ {
		eps := p.Eps / math.Pow(2, float64(t))
		mech, err := pm.New(eps)
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", t, err)
		}
		d.groups[t] = Group{Index: t, Eps: eps, Reports: 1 << t}
		d.mechs[t] = mech
	}
	return d, nil
}

// Groups returns the group layout.
func (d *DAP) Groups() []Group { return append([]Group(nil), d.groups...) }

// H returns the number of groups h = ⌈log₂(ε/ε₀)⌉+1.
func (d *DAP) H() int { return len(d.groups) }

// Params returns the protocol parameters.
func (d *DAP) Params() Params { return d.p }

// Mechanism returns the PM instance of group t.
func (d *DAP) Mechanism(t int) *pm.Mechanism { return d.mechs[t] }

// Collection holds the per-group reports received by the collector.
type Collection struct {
	// Groups contains the perturbed (or poison) reports of each group.
	Groups [][]float64
	// ByzCount is the number of Byzantine users (simulation ground truth,
	// not visible to the estimator).
	ByzCount int
}

// Collect simulates the user side of the protocol (§V-A stages 1–2): it
// shuffles users into h equal-sized groups, lets normal users perturb
// their value once per report slot with the group's budget, and lets the
// γ·N colluding Byzantine users send poison values from adv for every
// report slot. Byzantine users know each group's mechanism and output
// domain (the protocol is public) but not other users' data.
func (d *DAP) Collect(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Collection, error) {
	n := len(values)
	if n < d.H() {
		return nil, badCollection("fewer users than groups")
	}
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("%w: gamma must lie in [0,1)", ErrDomain)
	}
	if adv == nil {
		adv = attack.None{}
	}
	nByz := int(math.Round(gamma * float64(n)))
	// A single shuffle provides both the Byzantine subset and the group
	// assignment: group t holds users perm[t·n/h : (t+1)·n/h], and the
	// Byzantine users are the fixed ids {0..nByz−1}, met wherever the
	// shuffle scattered them. Byzantine users never report their own
	// values (Poison ignores them), so fixing their ids costs nothing,
	// while each group's Byzantine count stays multivariate hypergeometric
	// exactly as with the second O(N) permutation the seed version drew.
	perm := r.Perm(n)
	col := &Collection{Groups: make([][]float64, d.H()), ByzCount: nByz}
	h := d.H()
	for t := 0; t < h; t++ {
		lo, hi := t*n/h, (t+1)*n/h
		g := d.groups[t]
		mech := d.mechs[t]
		env := attack.EnvFor(mech, d.p.OPrime)
		env.Group = t
		reports := make([]float64, 0, (hi-lo)*g.Reports)
		for _, u := range perm[lo:hi] {
			if u < nByz {
				reports = append(reports, adv.Poison(r, env, g.Reports)...)
			} else {
				v := values[u]
				for k := 0; k < g.Reports; k++ {
					reports = append(reports, mech.Perturb(r, v))
				}
			}
		}
		col.Groups[t] = reports
	}
	return col, nil
}

// Estimate is the collector side of the protocol (§V stages 3–5): per
// group EMF probing, intra-group mean estimation with the configured
// scheme (Eq. 13), and variance-optimal inter-group aggregation
// (Algorithm 5). The poisoned side and γ̂ fed to EMF*/CEMF* come from the
// group with the smallest budget, where Theorem 3 makes EMF sharpest.
func (d *DAP) Estimate(col *Collection) (*Estimate, error) {
	return d.EstimateWarm(col, nil)
}

// EstimateWarm is Estimate with the solver runs seeded from a previous
// estimate's fits (tolerance-equivalent to the cold run; see WarmState).
func (d *DAP) EstimateWarm(col *Collection, warm *WarmState) (*Estimate, error) {
	h := d.H()
	if col == nil || len(col.Groups) != h {
		return nil, badCollection("collection does not match group layout")
	}
	matrices := make([]*emf.Matrix, h)
	counts := make([][]float64, h)
	sums := make([]float64, h)
	ns := make([]float64, h)
	for t := 0; t < h; t++ {
		if len(col.Groups[t]) == 0 {
			return nil, badCollection("group %d holds no reports", t)
		}
	}
	if err := forEachGroup(h, func(t int) error {
		din, dprime := emf.BucketCounts(len(col.Groups[t]), d.mechs[t].C())
		m, err := emf.BuildNumericCached(d.mechs[t], din, dprime)
		if err != nil {
			return err
		}
		matrices[t] = m
		counts[t] = m.Counts(col.Groups[t])
		sums[t] = stats.Sum(col.Groups[t])
		ns[t] = float64(len(col.Groups[t]))
		return nil
	}); err != nil {
		return nil, err
	}
	return d.estimateFromCounts(matrices, counts, sums, ns, col.Groups[h-1], warm)
}

// estimateFromCounts runs stages 3–5 over the per-group sufficient
// statistic (transform matrices, output histograms, report sums and
// counts). probeRaw carries the smallest-budget group's raw reports for
// Theorem 2's AutoOPrime trimmed mean; the histogram entry point passes
// nil and the trimmed mean falls back to bucket centers. warm optionally
// seeds every solver run from a previous estimate's fits.
func (d *DAP) estimateFromCounts(matrices []*emf.Matrix, counts [][]float64, sums, ns []float64, probeRaw []float64, warm *WarmState) (*Estimate, error) {
	h := d.H()
	var diag emfDiag
	// Stage 3: probe side and γ̂ at the smallest budget (group h−1).
	probeCfg := d.cfg(h - 1)
	oPrime := d.p.OPrime
	probe, err := emf.ProbeSideInit(matrices[h-1], counts[h-1], oPrime, probeCfg,
		warm.probeLeft(), warm.probeRight())
	if err != nil {
		return nil, err
	}
	diag.observe(probe.Left, probe.Right)
	side := probe.Side
	if d.p.AutoOPrime {
		// Theorem 2: trim the suspected-poisoned tail of the smallest-budget
		// reports (PM reports are unbiased, so their trimmed mean lives on
		// the input scale) and re-probe around the pessimistic O′. The
		// re-probe solves the same counts with shifted poison sets, so the
		// first probe's fits are its natural seeds.
		if probeRaw != nil {
			oPrime = PessimisticO(probeRaw, d.p.GammaSup, side == emf.Right)
		} else {
			oPrime = PessimisticOHist(counts[h-1], outCenters(matrices[h-1]),
				d.p.GammaSup, side == emf.Right)
		}
		oPrime = stats.Clamp(oPrime, -1, 1)
		if probe, err = emf.ProbeSideInit(matrices[h-1], counts[h-1], oPrime, probeCfg,
			probe.Left, probe.Right); err != nil {
			return nil, err
		}
		diag.observe(probe.Left, probe.Right)
		side = probe.Side
	}
	gammaGlobal := probe.Chosen().Gamma()

	est := &Estimate{
		PoisonedRight: side == emf.Right,
		Gamma:         gammaGlobal,
		GroupMeans:    make([]float64, h),
		GroupGammas:   make([]float64, h),
		Weights:       make([]float64, h),
		NHat:          make([]float64, h),
	}
	est.OPrime = oPrime
	b := make([]float64, h)
	bases := make([]*emf.Result, h)
	finals := make([]*emf.Result, h)
	diags := make([]emfDiag, h)
	// Stage 4: intra-group estimation. The h EM fits are independent (each
	// reads shared immutable inputs and writes only its own index), so they
	// run concurrently; the estimate is bit-identical to the sequential one.
	if err := forEachGroup(h, func(t int) error {
		wBase, wFinal := warm.base(t), warm.final(t)
		if t == h-1 {
			// The probe just solved group h−1's deconvolution on the chosen
			// side; its fit is a near-converged seed, fresher than any
			// previous estimate's.
			wBase = probe.Chosen()
			if wFinal == nil {
				wFinal = probe.Chosen()
			}
		}
		res, base, gammaT, err := d.groupResult(matrices[t], counts[t], side, gammaGlobal, oPrime, t, wBase, wFinal)
		if err != nil {
			return err
		}
		bases[t], finals[t] = base, res
		diags[t].observe(res)
		if base != nil && base != res {
			diags[t].observe(base)
		}
		nt := ns[t]
		mHat := gammaT * nt
		if mHat > 0.95*nt {
			mHat = 0.95 * nt
		}
		poisonMean := emf.PoisonMean(matrices[t], res)
		mt := (sums[t] - mHat*poisonMean) / (nt - mHat)
		est.GroupMeans[t] = stats.Clamp(mt, -1, 1)
		est.GroupGammas[t] = gammaT
		// n̂_t = (N_t − m̂_t)·ε_t/ε converts report counts to user counts.
		est.NHat[t] = (nt - mHat) * d.groups[t].Eps / d.p.Eps
		b[t] = est.NHat[t] * d.mechs[t].WorstCaseVar()
		return nil
	}); err != nil {
		return nil, err
	}
	for t := range diags {
		diag.merge(diags[t])
	}
	diag.apply(est)
	est.Warm = &WarmState{probeL: probe.Left, probeR: probe.Right, bases: bases, finals: finals}

	// Stage 5: inter-group aggregation (Algorithm 5).
	w, err := OptimalWeights(b, est.NHat, d.p.WeightMode)
	if err != nil {
		return nil, err
	}
	est.Weights = w
	est.VarMin = MinVariance(b, est.NHat)
	est.Mean = Aggregate(est.GroupMeans, w)
	return est, nil
}

// Run is Collect followed by Estimate.
func (d *DAP) Run(r *rand.Rand, values []float64, adv attack.Adversary, gamma float64) (*Estimate, error) {
	col, err := d.Collect(r, values, adv, gamma)
	if err != nil {
		return nil, err
	}
	return d.Estimate(col)
}

// groupResult applies the configured scheme to one group, seeding the
// solver from warmBase (the plain-EMF base fit) and warmFinal (the
// scheme's final fit) when available. It returns the final fit, the base
// fit it derives from (nil under EMF*, which needs none: its γ comes from
// the smallest-budget probe, so the unconstrained base run the seed
// version always performed was pure waste) and the group's γ̂.
func (d *DAP) groupResult(m *emf.Matrix, counts []float64, side emf.Side, gammaGlobal, oPrime float64, t int, warmBase, warmFinal *emf.Result) (res, base *emf.Result, gammaT float64, err error) {
	var poison []int
	if side == emf.Right {
		poison = m.PoisonRight(oPrime)
	} else {
		poison = m.PoisonLeft(oPrime)
	}
	cfg := d.cfg(t)
	if d.p.Scheme == SchemeEMFStar {
		cfg.Init = warmFinal
		res, err = emf.RunConstrained(m, counts, poison, gammaGlobal, cfg)
		return res, nil, gammaGlobal, err
	}
	cfg.Init = warmBase
	base, err = emf.Run(m, counts, poison, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if d.p.Scheme == SchemeCEMFStar {
		// RunConcentrated seeds its constrained re-run from base (the fit
		// on the current counts beats any previous estimate's).
		res, err = emf.RunConcentrated(m, counts, base, gammaGlobal, d.p.suppressFactor(), d.cfg(t))
		if err != nil {
			return nil, nil, 0, err
		}
		return res, base, res.Gamma(), nil
	}
	return base, base, base.Gamma(), nil
}

// cfg builds the EM iteration controls for group t, using the paper's
// termination threshold τ = 0.01·e^{ε_t} and the SQUAREM-accelerated
// solver (tolerance-equivalent to the plain loop, ~2–5× fewer E-steps).
func (d *DAP) cfg(t int) emf.Config {
	return emf.Config{Tol: emf.PaperTol(d.groups[t].Eps), MaxIter: d.p.EMFMaxIter, Accelerate: true}
}

// CollectPM gathers a plain single-group PM collection at budget eps with
// the same threat model — the collection that the Ostrich and Trimming
// baselines (and the k-means defense) operate on.
func CollectPM(r *rand.Rand, values []float64, eps float64, adv attack.Adversary, gamma float64, oPrime float64) ([]float64, error) {
	mech, err := pm.New(eps)
	if err != nil {
		return nil, err
	}
	if adv == nil {
		adv = attack.None{}
	}
	n := len(values)
	nByz := int(math.Round(gamma * float64(n)))
	env := attack.EnvFor(mech, oPrime)
	reports := make([]float64, 0, n)
	reports = append(reports, adv.Poison(r, env, nByz)...)
	// Only the Byzantine subset matters here (report order is irrelevant to
	// every consumer — counts, sums and trimming are order-invariant), so a
	// rejection-sampled index bitset replaces the full O(N) permutation the
	// seed version drew. At γ = 0 no selection randomness is consumed at all.
	byz := SampleSubset(r, n, nByz)
	for u, v := range values {
		if byz == nil || byz[u>>6]&(1<<(uint(u)&63)) == 0 {
			reports = append(reports, mech.Perturb(r, v))
		}
	}
	return reports, nil
}

// SampleSubset draws a uniform random k-subset of [0,n) as a bitset via
// rejection sampling (expected n·ln(n/(n−k)) draws, ≤ ~1.4k at the threat
// model's k ≤ n/2). It returns nil when k = 0.
func SampleSubset(r *rand.Rand, n, k int) []uint64 {
	if k <= 0 {
		return nil
	}
	set := make([]uint64, (n+63)/64)
	for c := 0; c < k; {
		j := uint(r.IntN(n))
		if set[j>>6]&(1<<(j&63)) == 0 {
			set[j>>6] |= 1 << (j & 63)
			c++
		}
	}
	return set
}
