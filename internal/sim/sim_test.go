package sim

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestRepeatDeterministic(t *testing.T) {
	fn := func(r *rand.Rand) (float64, error) { return r.Float64(), nil }
	a, err := Repeat(7, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Repeat(7, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Repeat not deterministic across runs")
		}
	}
}

func TestRepeatStreamsIndependent(t *testing.T) {
	fn := func(r *rand.Rand) (float64, error) { return r.Float64(), nil }
	out, err := Repeat(1, 32, fn)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatal("duplicate trial values: streams correlated")
		}
		seen[v] = true
	}
}

func TestRepeatZeroTrials(t *testing.T) {
	out, err := Repeat(1, 0, func(r *rand.Rand) (float64, error) { return 1, nil })
	if err != nil || out != nil {
		t.Fatalf("zero trials: %v %v", out, err)
	}
}

func TestRepeatPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Repeat(1, 8, func(r *rand.Rand) (float64, error) {
		if r.Float64() < 2 { // always
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE(1, 100, 0, func(r *rand.Rand) (float64, error) {
		return 1, nil // constant estimate, truth 0 → MSE 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MSE = %v", got)
	}
}

func TestMSEConvergesToVariance(t *testing.T) {
	// Unbiased Gaussian estimates: MSE should approach the variance.
	got, err := MSE(2, 4000, 0, func(r *rand.Rand) (float64, error) {
		return r.NormFloat64() * 0.5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("MSE = %v, want ~0.25", got)
	}
}

func TestMSEVec(t *testing.T) {
	truth := []float64{0, 0}
	got, err := MSEVec(3, 50, truth, func(r *rand.Rand) ([]float64, error) {
		return []float64{1, 3}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("MSEVec = %v, want 5", got)
	}
}

func TestMSEVecError(t *testing.T) {
	boom := errors.New("boom")
	_, err := MSEVec(1, 4, []float64{0}, func(r *rand.Rand) ([]float64, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestMSEVecZeroTrials(t *testing.T) {
	got, err := MSEVec(1, 0, []float64{0}, nil)
	if err != nil || got != 0 {
		t.Fatalf("zero trials: %v %v", got, err)
	}
}
