// Package sim runs repeated Monte-Carlo protocol trials in parallel with
// deterministic per-trial randomness — the engine behind every MSE figure
// in the experiment harness.
package sim

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Trial produces one estimate given a trial-private generator.
type Trial func(r *rand.Rand) (float64, error)

// Repeat runs fn for the given number of trials, each with an independent
// deterministic stream derived from seed, spread over a worker pool. The
// returned estimates are ordered by trial index; the first error (if any)
// is returned alongside the successful estimates.
func Repeat(seed uint64, trials int, fn Trial) ([]float64, error) {
	if trials <= 0 {
		return nil, nil
	}
	out := make([]float64, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(rng.Split(seed, uint64(i)))
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// MSE runs trials of fn and returns the mean squared error of the
// estimates against truth.
func MSE(seed uint64, trials int, truth float64, fn Trial) (float64, error) {
	ests, err := Repeat(seed, trials, fn)
	if err != nil {
		return 0, err
	}
	return stats.MSE(ests, truth), nil
}

// Average runs trials of fn and returns the mean of the outputs — used
// for series that are already error magnitudes (e.g. |γ̂−γ|).
func Average(seed uint64, trials int, fn Trial) (float64, error) {
	ests, err := Repeat(seed, trials, fn)
	if err != nil {
		return 0, err
	}
	return stats.Mean(ests), nil
}

// VecTrial produces one vector estimate (e.g. a frequency histogram).
type VecTrial func(r *rand.Rand) ([]float64, error)

// MSEVec runs trials of fn and returns the average component MSE of the
// vector estimates against truth.
func MSEVec(seed uint64, trials int, truth []float64, fn VecTrial) (float64, error) {
	if trials <= 0 {
		return 0, nil
	}
	mses := make([]float64, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				est, err := fn(rng.Split(seed, uint64(i)))
				if err != nil {
					errs[i] = err
					continue
				}
				mses[i] = stats.MSEVec(est, truth)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return stats.Mean(mses), nil
}
