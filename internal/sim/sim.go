// Package sim runs repeated Monte-Carlo protocol trials in parallel with
// deterministic per-trial randomness — the engine behind every MSE figure
// in the experiment harness.
package sim

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Trial produces one estimate given a trial-private generator.
type Trial func(r *rand.Rand) (float64, error)

// repeatInto runs fn for the given number of trials, each with an
// independent deterministic stream derived from seed (rng.Split by trial
// index), spread over a GOMAXPROCS-bounded worker pool. Results are
// ordered by trial index; the lowest-index error (if any) is returned
// alongside whatever completed. Every public runner below is a thin
// per-result-type wrapper over this one loop.
func repeatInto[T any](seed uint64, trials int, fn func(r *rand.Rand) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	out := make([]T, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(rng.Split(seed, uint64(i)))
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Repeat runs fn for the given number of trials, each with an independent
// deterministic stream derived from seed, spread over a worker pool. The
// returned estimates are ordered by trial index; the first error (if any)
// is returned alongside the successful estimates.
func Repeat(seed uint64, trials int, fn Trial) ([]float64, error) {
	return repeatInto(seed, trials, fn)
}

// MSE runs trials of fn and returns the mean squared error of the
// estimates against truth.
func MSE(seed uint64, trials int, truth float64, fn Trial) (float64, error) {
	ests, err := Repeat(seed, trials, fn)
	if err != nil {
		return 0, err
	}
	return stats.MSE(ests, truth), nil
}

// Average runs trials of fn and returns the mean of the outputs — used
// for series that are already error magnitudes (e.g. |γ̂−γ|).
func Average(seed uint64, trials int, fn Trial) (float64, error) {
	ests, err := Repeat(seed, trials, fn)
	if err != nil {
		return 0, err
	}
	return stats.Mean(ests), nil
}

// VecTrial produces one vector estimate (e.g. a frequency histogram).
type VecTrial func(r *rand.Rand) ([]float64, error)

// MSEVec runs trials of fn and returns the average component MSE of the
// vector estimates against truth.
func MSEVec(seed uint64, trials int, truth []float64, fn VecTrial) (float64, error) {
	if trials <= 0 {
		return 0, nil
	}
	mses, err := repeatInto(seed, trials, func(r *rand.Rand) (float64, error) {
		est, err := fn(r)
		if err != nil {
			return 0, err
		}
		return stats.MSEVec(est, truth), nil
	})
	if err != nil {
		return 0, err
	}
	return stats.Mean(mses), nil
}

// MSEPer runs trials of a vector trial whose components each estimate the
// same scalar truth (one component per estimator, evaluated on shared
// trial data) and returns the per-component MSE across trials — the
// engine behind experiment tables whose scheme rows share collections.
func MSEPer(seed uint64, trials int, truth float64, fn VecTrial) ([]float64, error) {
	if trials <= 0 {
		return nil, nil
	}
	ests, err := repeatInto(seed, trials, fn)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ests[0]))
	for c := range out {
		var s float64
		for i := range ests {
			d := ests[i][c] - truth
			s += d * d
		}
		out[c] = s / float64(trials)
	}
	return out, nil
}

// MultiVecTrial produces one vector estimate per estimator (e.g. one
// frequency histogram per scheme) from shared trial data.
type MultiVecTrial func(r *rand.Rand) ([][]float64, error)

// MSEVecPer runs trials of a multi-vector trial and returns, per
// estimator, the average component MSE of its vector estimates against
// truth — MSEVec for scheme rows sharing collections.
func MSEVecPer(seed uint64, trials int, truth []float64, fn MultiVecTrial) ([]float64, error) {
	if trials <= 0 {
		return nil, nil
	}
	mses, err := repeatInto(seed, trials, func(r *rand.Rand) ([]float64, error) {
		ests, err := fn(r)
		if err != nil {
			return nil, err
		}
		per := make([]float64, len(ests))
		for c, est := range ests {
			per[c] = stats.MSEVec(est, truth)
		}
		return per, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mses[0]))
	for c := range out {
		var s float64
		for i := range mses {
			s += mses[i][c]
		}
		out[c] = s / float64(trials)
	}
	return out, nil
}
