// Package kmeans implements one-dimensional k-means clustering with
// k-means++ seeding, the clustering substrate of the k-means-based defense
// [38] that the paper compares against in Fig. 9.
package kmeans

import (
	"errors"
	"math"
	"math/rand/v2"
)

// Result holds the clustering outcome.
type Result struct {
	Centroids []float64
	// Assign maps each input point to its centroid index.
	Assign []int
	// Sizes counts the members of each cluster.
	Sizes []int
	Iters int
}

// Cluster runs Lloyd's algorithm with k-means++ seeding on 1-D points.
// maxIter caps the iterations (0 selects 100).
func Cluster(r *rand.Rand, points []float64, k, maxIter int) (*Result, error) {
	if k < 1 {
		return nil, errors.New("kmeans: k must be positive")
	}
	if len(points) < k {
		return nil, errors.New("kmeans: fewer points than clusters")
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	centroids := seedPlusPlus(r, points, k)
	assign := make([]int, len(points))
	sizes := make([]int, k)
	sums := make([]float64, k)
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i := range sizes {
			sizes[i] = 0
			sums[i] = 0
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				d := math.Abs(p - ctr)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				changed = true
			}
			assign[i] = best
			sizes[best]++
			sums[best] += p
		}
		for c := range centroids {
			if sizes[c] > 0 {
				centroids[c] = sums[c] / float64(sizes[c])
			}
		}
		if !changed && iters > 0 {
			break
		}
	}
	return &Result{Centroids: centroids, Assign: assign, Sizes: sizes, Iters: iters}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ rule: the
// first uniformly, the rest proportional to squared distance from the
// nearest chosen centroid.
func seedPlusPlus(r *rand.Rand, points []float64, k int) []float64 {
	centroids := make([]float64, 0, k)
	centroids = append(centroids, points[r.IntN(len(points))])
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := (p - c) * (p - c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with a centroid; duplicate one.
			centroids = append(centroids, points[r.IntN(len(points))])
			continue
		}
		u := r.Float64() * total
		idx := 0
		for acc := d2[0]; u > acc && idx < len(points)-1; {
			idx++
			acc += d2[idx]
		}
		centroids = append(centroids, points[idx])
	}
	return centroids
}

// Largest returns the index of the largest cluster.
func (res *Result) Largest() int {
	best, bestSize := 0, -1
	for c, s := range res.Sizes {
		if s > bestSize {
			best, bestSize = c, s
		}
	}
	return best
}
