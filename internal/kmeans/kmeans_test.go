package kmeans

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestClusterValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := Cluster(r, []float64{1, 2}, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Cluster(r, []float64{1}, 2, 0); err == nil {
		t.Fatal("too few points accepted")
	}
}

func TestClusterTwoBlobs(t *testing.T) {
	r := rng.New(2)
	points := make([]float64, 0, 400)
	for i := 0; i < 300; i++ {
		points = append(points, rng.Normal(r, 0, 0.1))
	}
	for i := 0; i < 100; i++ {
		points = append(points, rng.Normal(r, 10, 0.1))
	}
	res, err := Cluster(r, points, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Centroids[0], res.Centroids[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo) > 0.2 || math.Abs(hi-10) > 0.2 {
		t.Fatalf("centroids %v, want ~{0,10}", res.Centroids)
	}
	if got := res.Sizes[res.Largest()]; got != 300 {
		t.Fatalf("largest cluster size %d, want 300", got)
	}
}

func TestClusterAssignConsistency(t *testing.T) {
	r := rng.New(3)
	points := []float64{0, 0.1, 0.2, 9.9, 10, 10.1}
	res, err := Cluster(r, points, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] == res.Assign[5] {
		t.Fatal("opposite blobs assigned to the same cluster")
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[4] != res.Assign[5] {
		t.Fatal("neighbors split across clusters")
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(points) {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	r := rng.New(4)
	points := []float64{5, 5, 5, 5}
	res, err := Cluster(r, points, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centroids {
		if c != 5 {
			t.Fatalf("centroid %v, want 5", c)
		}
	}
}

func TestClusterK1(t *testing.T) {
	r := rng.New(5)
	points := []float64{1, 2, 3}
	res, err := Cluster(r, points, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0]-2) > 1e-9 {
		t.Fatalf("centroid %v, want 2", res.Centroids[0])
	}
}

func TestDeterministic(t *testing.T) {
	points := []float64{1, 2, 3, 10, 11, 12}
	a, _ := Cluster(rng.New(6), points, 2, 0)
	b, _ := Cluster(rng.New(6), points, 2, 0)
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}
