package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("generators with equal seeds diverged at draw %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("generators with different seeds agreed on %d/100 draws", same)
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	a, b := Split(7, 0), Split(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams agreed on %d/100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := Split(9, 3), Split(9, 3)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		x := Uniform(r, -3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += Uniform(r, 0, 10)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("Uniform(0,10) mean = %v, want ~5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Normal(r, 2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("Normal variance = %v, want ~9", variance)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(4)
	for i := 0; i < 5000; i++ {
		x := TruncNormal(r, 0, 5, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestTruncNormalSwappedBounds(t *testing.T) {
	r := New(5)
	x := TruncNormal(r, 0, 1, 2, -2)
	if x < -2 || x > 2 {
		t.Fatalf("TruncNormal with swapped bounds out of range: %v", x)
	}
}

func TestTruncNormalDegenerateInterval(t *testing.T) {
	r := New(6)
	// Interval far in the tail: rejection will exhaust and clamp.
	x := TruncNormal(r, 0, 0.001, 10, 11)
	if x < 10 || x > 11 {
		t.Fatalf("degenerate TruncNormal out of range: %v", x)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(7)
	for _, k := range []float64{0.5, 1, 2.5, 9} {
		const n = 300000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := Gamma(r, k)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-k) > 0.05*math.Max(1, k) {
			t.Fatalf("Gamma(%v) mean = %v, want ~%v", k, mean, k)
		}
		if math.Abs(variance-k) > 0.12*math.Max(1, k) {
			t.Fatalf("Gamma(%v) variance = %v, want ~%v", k, variance, k)
		}
	}
}

func TestGammaPanicsOnNonPositiveShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) should panic")
		}
	}()
	Gamma(New(1), 0)
}

func TestBetaMoments(t *testing.T) {
	r := New(8)
	cases := []struct{ a, b float64 }{{2, 5}, {5, 2}, {1, 6}, {6, 1}}
	for _, c := range cases {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			x := Beta(r, c.a, c.b)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%v,%v) out of [0,1]: %v", c.a, c.b, x)
			}
			sum += x
		}
		want := c.a / (c.a + c.b)
		if mean := sum / n; math.Abs(mean-want) > 0.01 {
			t.Fatalf("Beta(%v,%v) mean = %v, want ~%v", c.a, c.b, mean, want)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exponential(r, 4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("Exponential mean = %v, want ~4", mean)
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := New(10)
	got := SampleWithoutReplacement(r, 50, 20)
	if len(got) != 20 {
		t.Fatalf("len = %d, want 20", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 50 {
			t.Fatalf("index out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	r := New(11)
	got := SampleWithoutReplacement(r, 5, 5)
	seen := make(map[int]bool)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample should be a permutation, got %v", got)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	SampleWithoutReplacement(New(1), 3, 4)
}

// Property: Beta samples always lie in [0,1] for random valid shapes.
func TestBetaRangeProperty(t *testing.T) {
	r := New(12)
	f := func(ai, bi uint8) bool {
		a := 0.1 + float64(ai%60)/10
		b := 0.1 + float64(bi%60)/10
		x := Beta(r, a, b)
		return x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gamma samples are non-negative for random valid shapes.
func TestGammaNonNegativeProperty(t *testing.T) {
	r := New(13)
	f := func(ki uint8) bool {
		k := 0.05 + float64(ki%80)/8
		return Gamma(r, k) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
