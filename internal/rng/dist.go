package rng

import (
	"math"
	"math/rand/v2"
)

// Uniform samples uniformly from [lo, hi).
func Uniform(r *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal samples from a Gaussian with the given mean and standard deviation.
func Normal(r *rand.Rand, mu, sigma float64) float64 {
	return mu + sigma*r.NormFloat64()
}

// TruncNormal samples a Gaussian restricted to [lo, hi] by rejection. For
// the parameter regimes in this repository the acceptance rate is high; a
// clamp guards the pathological case where the interval carries almost no
// mass.
func TruncNormal(r *rand.Rand, mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 1000; i++ {
		x := Normal(r, mu, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mu))
}

// Gamma samples from a Gamma distribution with shape k and scale 1 using
// the Marsaglia–Tsang squeeze method; shapes below one are boosted via the
// standard U^{1/k} transformation.
func Gamma(r *rand.Rand, k float64) float64 {
	if k <= 0 {
		panic("rng: Gamma shape must be positive")
	}
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^{1/k}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma(r, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1.0 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta samples from a Beta(a, b) distribution via the Gamma ratio.
func Beta(r *rand.Rand, a, b float64) float64 {
	x := Gamma(r, a)
	y := Gamma(r, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Exponential samples from an exponential distribution with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n) via a partial Fisher–Yates shuffle. It panics if k > n.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		panic("rng: sample size exceeds population")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
