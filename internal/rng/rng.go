// Package rng provides deterministic pseudo-random generation and the
// distribution samplers used throughout the repository.
//
// Every stochastic component in this codebase draws randomness through an
// explicit *rand.Rand so that experiments are reproducible bit-for-bit from
// a seed. Parallel workloads derive independent streams with Split.
package rng

import "math/rand/v2"

// goldenGamma is the 64-bit golden-ratio constant used to decorrelate the
// two PCG seed words derived from a single user-facing seed.
const goldenGamma = 0x9e3779b97f4a7c15

// New returns a deterministic generator seeded from seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed*goldenGamma+1))
}

// Split derives an independent child generator for stream i of the given
// seed. Different (seed, i) pairs yield decorrelated streams, which lets
// parallel trials each own a private generator while remaining reproducible.
func Split(seed, i uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed^(i+1)*goldenGamma, (seed+i)*goldenGamma+i+1))
}
